package protocols

import (
	"fmt"
	"sync"

	"lvmajority/internal/crn"
	"lvmajority/internal/rng"
)

// CRNVariant selects one of the Condon et al. approximate-majority reaction
// networks (§2.2 of the paper). All variants use three species X, Y, B
// except TriMajority, which uses only X and Y with trimolecular rules.
type CRNVariant int

const (
	// SingleB: X+Y → X+B and Y+X → Y+B plus recruitment X+B → X+X,
	// Y+B → Y+Y. A cancellation produces a single blank — the paper notes
	// this variant resembles non-self-destructive competition.
	SingleB CRNVariant = iota + 1
	// DoubleB: X+Y → B+B plus recruitment. Cancellation removes both
	// opinionated molecules — resembling self-destructive competition.
	DoubleB
	// HeavyB: X+Y → B+B+B plus recruitment; two reactants, three
	// products, the "heavy" blank-producing variant.
	HeavyB
	// TriMajority is the two-species trimolecular rule
	// X+X+Y → X+X+X and Y+Y+X → Y+Y+Y.
	TriMajority
)

// String returns the variant name.
func (v CRNVariant) String() string {
	switch v {
	case SingleB:
		return "single-B"
	case DoubleB:
		return "double-B"
	case HeavyB:
		return "heavy-B"
	case TriMajority:
		return "tri-majority"
	default:
		return fmt.Sprintf("CRNVariant(%d)", int(v))
	}
}

// CondonProtocol adapts a Condon et al. CRN to the consensus.Protocol
// interface, running the stochastic jump chain until one opinion is extinct
// (and, for blank-producing variants, all blanks are converted).
type CondonProtocol struct {
	// Variant selects the rule set.
	Variant CRNVariant
	// Rate is the shared rate constant of every reaction; zero defaults
	// to 1 (the rate scales time only, not the jump-chain distribution,
	// when all reactions share it).
	Rate float64
	// MaxSteps bounds each trial; zero defaults to 4000·n.
	MaxSteps int
}

// Name implements consensus.Protocol.
func (c CondonProtocol) Name() string {
	return fmt.Sprintf("Condon %s CRN", c.Variant)
}

// condonNets caches the immutable reaction network (and its compiled
// dependency graph) per (variant, rate), so replicated trials share one
// network instead of rebuilding it per trial.
var condonNets sync.Map // map[condonNetKey]*crn.Network

type condonNetKey struct {
	variant CRNVariant
	rate    float64
}

// network returns the (shared, immutable) reaction network for the variant.
func (c CondonProtocol) network() (*crn.Network, error) {
	// Normalize the rate exactly as buildNetwork does, so Rate=0 and
	// Rate=1 (identical networks) share one cache entry; a NaN rate would
	// never match a sync.Map key, so reject it before the lookup.
	rate := c.Rate
	if rate <= 0 {
		rate = 1
	}
	if rate != rate {
		return nil, fmt.Errorf("protocols: %s CRN has NaN rate", c.Variant)
	}
	key := condonNetKey{variant: c.Variant, rate: rate}
	if cached, ok := condonNets.Load(key); ok {
		return cached.(*crn.Network), nil
	}
	net, err := c.buildNetwork()
	if err != nil {
		return nil, err
	}
	cached, _ := condonNets.LoadOrStore(key, net)
	return cached.(*crn.Network), nil
}

// buildNetwork constructs the reaction network for the variant.
func (c CondonProtocol) buildNetwork() (*crn.Network, error) {
	rate := c.Rate
	if rate <= 0 {
		rate = 1
	}
	switch c.Variant {
	case SingleB, DoubleB, HeavyB:
		net, err := crn.NewNetwork("X", "Y", "B")
		if err != nil {
			return nil, err
		}
		const x, y, b = crn.Species(0), crn.Species(1), crn.Species(2)
		var cancellations []crn.Reaction
		switch c.Variant {
		case SingleB:
			cancellations = []crn.Reaction{
				{Name: "X+Y->X+B", Reactants: []crn.Species{x, y}, Products: []crn.Species{x, b}, Rate: rate},
				{Name: "Y+X->Y+B", Reactants: []crn.Species{y, x}, Products: []crn.Species{y, b}, Rate: rate},
			}
		case DoubleB:
			cancellations = []crn.Reaction{
				{Name: "X+Y->B+B", Reactants: []crn.Species{x, y}, Products: []crn.Species{b, b}, Rate: rate},
			}
		case HeavyB:
			cancellations = []crn.Reaction{
				{Name: "X+Y->B+B+B", Reactants: []crn.Species{x, y}, Products: []crn.Species{b, b, b}, Rate: rate},
			}
		}
		for _, r := range cancellations {
			if err := net.AddReaction(r); err != nil {
				return nil, err
			}
		}
		recruit := []crn.Reaction{
			{Name: "X+B->X+X", Reactants: []crn.Species{x, b}, Products: []crn.Species{x, x}, Rate: rate},
			{Name: "Y+B->Y+Y", Reactants: []crn.Species{y, b}, Products: []crn.Species{y, y}, Rate: rate},
		}
		for _, r := range recruit {
			if err := net.AddReaction(r); err != nil {
				return nil, err
			}
		}
		return net, nil
	case TriMajority:
		net, err := crn.NewNetwork("X", "Y")
		if err != nil {
			return nil, err
		}
		const x, y = crn.Species(0), crn.Species(1)
		rules := []crn.Reaction{
			{Name: "X+X+Y->3X", Reactants: []crn.Species{x, x, y}, Products: []crn.Species{x, x, x}, Rate: rate},
			{Name: "Y+Y+X->3Y", Reactants: []crn.Species{y, y, x}, Products: []crn.Species{y, y, y}, Rate: rate},
		}
		for _, r := range rules {
			if err := net.AddReaction(r); err != nil {
				return nil, err
			}
		}
		return net, nil
	default:
		return nil, fmt.Errorf("protocols: unknown CRN variant %d", c.Variant)
	}
}

// Trial implements consensus.Protocol.
func (c CondonProtocol) Trial(n, delta int, src *rng.Source) (bool, error) {
	if n < 2 {
		return false, fmt.Errorf("protocols: population %d too small", n)
	}
	if delta < 0 || (n-delta)%2 != 0 || delta > n-2 {
		return false, fmt.Errorf("protocols: infeasible gap %d for n=%d", delta, n)
	}
	net, err := c.network()
	if err != nil {
		return false, err
	}
	b := (n - delta) / 2
	a := n - b
	initial := []int{a, b}
	if net.NumSpecies() == 3 {
		initial = append(initial, 0)
	}
	sim, err := crn.NewSimulator(net, initial, src)
	if err != nil {
		return false, err
	}
	maxSteps := c.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 4000 * n
	}
	stop := func(state []int) bool {
		if len(state) == 3 && state[2] != 0 {
			return false
		}
		return state[0] == 0 || state[1] == 0
	}
	res, err := sim.Run(stop, maxSteps, nil)
	if err != nil {
		return false, err
	}
	if !res.Stopped && !res.Absorbed {
		return false, nil // budget exhausted
	}
	return sim.Count(0) > 0 && sim.Count(1) == 0, nil
}
