package protocols

import (
	"fmt"

	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
)

// AndaurProtocol is our reconstruction of the resource-consumer model of
// Andaur et al. [6] as this paper describes it: non-self-destructive
// interference competition, no individual death reactions (δ = 0), and
// bounded, non-mass-action growth. Growth is modelled with the birth
// propensity min(β·xᵢ, β·ResourceCap) — per-capita exponential growth that
// saturates once a species reaches the resource capacity, which is the
// bounded-growth property this paper's §1.4 relies on (their dominating
// chain stays "nice"). The original model couples growth to an explicit
// resource species; the saturated-rate form exercises the same code path
// (sub-mass-action growth + NSD competition) without the unavailable
// original's exact constants — see the reconstruction caveat in the
// generated DESIGN.md §2.
type AndaurProtocol struct {
	// Beta is the per-capita growth rate before saturation.
	Beta float64
	// Alpha is the per-pair interference competition rate.
	Alpha float64
	// ResourceCap is the population count at which a species' total
	// growth propensity saturates.
	ResourceCap int
	// MaxSteps bounds each trial; zero defaults to lv.DefaultMaxSteps.
	MaxSteps int
}

// Name implements consensus.Protocol.
func (a AndaurProtocol) Name() string {
	return fmt.Sprintf("Andaur resource-consumer (beta=%g alpha=%g cap=%d)", a.Beta, a.Alpha, a.ResourceCap)
}

// Validate checks the parameters.
func (a AndaurProtocol) Validate() error {
	if a.Beta < 0 || a.Alpha <= 0 {
		return fmt.Errorf("protocols: Andaur model needs beta >= 0 and alpha > 0, got beta=%g alpha=%g", a.Beta, a.Alpha)
	}
	if a.ResourceCap <= 0 {
		return fmt.Errorf("protocols: Andaur model needs a positive resource cap, got %d", a.ResourceCap)
	}
	return nil
}

// Trial implements consensus.Protocol by stepping the bounded-growth NSD
// chain directly (it is not an lv.Params chain because of the saturated
// birth propensity).
func (a AndaurProtocol) Trial(n, delta int, src *rng.Source) (bool, error) {
	if err := a.Validate(); err != nil {
		return false, err
	}
	if n < 2 || delta < 0 || (n-delta)%2 != 0 || delta > n-2 {
		return false, fmt.Errorf("protocols: infeasible (n=%d, delta=%d)", n, delta)
	}
	minority := (n - delta) / 2
	x0, x1 := n-minority, minority

	maxSteps := a.MaxSteps
	if maxSteps <= 0 {
		maxSteps = lv.DefaultMaxSteps
	}
	cap64 := float64(a.ResourceCap)
	for step := 0; step < maxSteps; step++ {
		if x0 == 0 || x1 == 0 {
			return x0 > 0, nil
		}
		// Saturated growth propensities.
		g0 := a.Beta * min(float64(x0), cap64)
		g1 := a.Beta * min(float64(x1), cap64)
		// NSD interference: victim dies, killer survives. With
		// symmetric rates the initiator identity only matters through
		// which species loses an individual.
		k0 := a.Alpha * float64(x0) * float64(x1) // species 0 kills a 1
		k1 := a.Alpha * float64(x0) * float64(x1) // species 1 kills a 0
		total := g0 + g1 + k0 + k1
		if total <= 0 {
			return false, nil
		}
		u := src.Float64() * total
		switch {
		case u < g0:
			x0++
		case u < g0+g1:
			x1++
		case u < g0+g1+k0:
			x1--
		default:
			x0--
		}
	}
	return false, nil
}

// NewChoProtocol returns the Cho et al. model: the special case of the
// self-destructive LV chain with no individual deaths (δ = 0), for which
// Cho et al. proved a sufficient gap of Ω(√(n log n)) — the bound this
// paper improves exponentially to O(log² n).
func NewChoProtocol(beta, alpha float64) LVParamsProtocol {
	return LVParamsProtocol{
		Params: lv.Neutral(beta, 0, alpha, 0, lv.SelfDestructive),
		Label:  "Cho et al. (delta=0, self-destructive LV)",
	}
}

// LVParamsProtocol is a thin named adapter so this package can hand back LV
// parameter presets without importing the consensus package (which would
// not be a cycle, but keeps the dependency graph one-directional:
// protocols -> lv only).
type LVParamsProtocol struct {
	Params lv.Params
	Label  string
}

// Name implements consensus.Protocol.
func (p LVParamsProtocol) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return p.Params.String()
}

// Trial implements consensus.Protocol.
func (p LVParamsProtocol) Trial(n, delta int, src *rng.Source) (bool, error) {
	if n < 2 || delta < 0 || (n-delta)%2 != 0 || delta > n-2 {
		return false, fmt.Errorf("protocols: infeasible (n=%d, delta=%d)", n, delta)
	}
	minority := (n - delta) / 2
	out, err := lv.Run(p.Params, lv.State{X0: n - minority, X1: minority}, src, lv.RunOptions{})
	if err != nil {
		return false, err
	}
	return out.Consensus && out.MajorityWon, nil
}
