// Package protocols implements the baseline majority-consensus protocols the
// paper compares against or cites as prior work (§2.2):
//
//   - a population-protocol engine (static population, uniformly random
//     ordered pairwise interactions) with the classic 3-state approximate
//     majority protocol of Angluin, Aspnes, and Eisenstat and the 4-state
//     exact majority protocol of Draief–Vojnović / Mertzios et al.;
//   - the chemical-reaction-network protocols of Condon et al. ("single-B",
//     "double-B", "heavy-B", and the two-species trimolecular rule), built
//     on the internal/crn engine; and
//   - the resource-consumer model of Andaur et al. (bounded, non-mass-action
//     growth, no individual deaths, non-self-destructive interference) and
//     the Cho et al. special case (δ = 0, self-destructive) of the LV model.
//
// Every protocol satisfies the consensus.Protocol interface, so the same
// estimator and threshold search drive all of them.
package protocols

import (
	"fmt"
	"sync"

	"lvmajority/internal/rng"
)

// PopulationKernel selects the event loop a PopulationProtocol trial runs
// on. Both kernels simulate exactly the same process — uniformly random
// ordered pairs, one interaction per clock tick — but consume the random
// stream differently, so individual trials differ while every distribution
// (winner, interaction counts, budget behaviour) is unchanged.
type PopulationKernel int

const (
	// KernelBatch (the default) skips runs of null interactions in one
	// shot: it draws the number of consecutive pair selections that
	// change no agent from the exact geometric law, advances the
	// interaction counter by that many ticks, then samples the next
	// effective pair from the conditional distribution. Near convergence
	// almost every interaction is null, so this is the fast kernel for
	// the small state spaces used here. Its per-effective-interaction
	// cost is O(NumStates²) (one pass over the non-null pair weights), so
	// a protocol with many states and few null interactions is better
	// served by KernelPerEvent, whose per-interaction cost is
	// O(NumStates).
	KernelBatch PopulationKernel = iota
	// KernelPerEvent simulates every interaction individually, drawing
	// the initiator and responder per tick. It is byte-for-byte identical
	// to the historical event loop for a given random stream.
	KernelPerEvent
	// KernelLockstep is the structure-of-arrays block engine: it advances
	// up to MaxLockstepLanes replicates of the same protocol in lockstep
	// against one shared compiled rule table, with per-lane counts in
	// flat planes and per-lane null-skip draws (see lockstep.go). Each
	// lane consumes its own index-keyed stream in exactly the order the
	// batch kernel would, so per-trial outcomes are byte-identical to
	// KernelBatch and independent of how trials are packed into lanes. A
	// plain Trial call therefore runs the scalar batch loop; the block
	// path is reached through NewTrialBlock (consensus.BlockTrialer).
	KernelLockstep
)

// String returns the kernel name.
func (k PopulationKernel) String() string {
	switch k {
	case KernelBatch:
		return "batch"
	case KernelPerEvent:
		return "per-event"
	case KernelLockstep:
		return "lockstep"
	default:
		return fmt.Sprintf("PopulationKernel(%d)", int(k))
	}
}

// ParseKernel maps a kernel name — "", "batch", "per-event", or
// "lockstep" — to its PopulationKernel; the empty string selects the
// default batch kernel. It is the inverse of String and the one parser
// shared by the spec layer and the experiment harness.
func ParseKernel(name string) (PopulationKernel, error) {
	switch name {
	case "", "batch":
		return KernelBatch, nil
	case "per-event":
		return KernelPerEvent, nil
	case "lockstep":
		return KernelLockstep, nil
	default:
		return 0, fmt.Errorf("protocols: unknown kernel %q (want batch, per-event, or lockstep)", name)
	}
}

// PopulationProtocol is a population protocol over a small state space with
// uniformly random ordered pairwise interactions: at each step an ordered
// pair of distinct agents (initiator, responder) is chosen uniformly at
// random and both agents update according to Rule.
//
// The configuration fields must not be mutated after the first Trial call:
// the protocol compiles Rule into a flat transition table once, on first
// use.
type PopulationProtocol struct {
	// ProtocolName labels the protocol.
	ProtocolName string
	// NumStates is the number of agent states.
	NumStates int
	// Rule maps (initiator, responder) states to their successor states.
	Rule func(initiator, responder int) (int, int)
	// MajorityState and MinorityState are the initial states of
	// majority- and minority-opinion agents.
	MajorityState, MinorityState int
	// Done inspects the per-state counts and reports whether the
	// execution has stabilized, and if so which opinion won (0 for the
	// initial majority's opinion, 1 for the minority's, −1 for neither).
	Done func(counts []int) (done bool, winner int)
	// DoneWhenZero, when non-empty, restates Done in compiled form: the
	// execution is decided the first time every state in some rule's
	// Zero set has count zero, and the first matching rule (in order)
	// names the winner. The lockstep kernel checks these rules with a
	// handful of loads per lane instead of gathering counts and making
	// an indirect Done call — which would otherwise be a third of its
	// per-round budget. The scalar kernels deliberately keep calling
	// Done, so the kernel-equivalence suite cross-checks the two forms
	// on every reachable trajectory; TestDoneWhenZeroMatchesDone checks
	// them against each other directly.
	DoneWhenZero []DoneRule
	// MaxInteractionsFor bounds the trial length as a function of n;
	// nil uses 400·n·(log₂ n + 1), generous for protocols converging in
	// O(n log n) interactions.
	MaxInteractionsFor func(n int) int
	// Kernel selects the trial event loop (default KernelBatch).
	Kernel PopulationKernel
	// Lanes is the lane width R of the lockstep kernel: how many
	// replicates one block engine advances per instruction stream. Zero
	// selects DefaultLockstepLanes; valid values are 1..MaxLockstepLanes.
	// Because every lane consumes its own index-keyed stream, the lane
	// width never changes any trial outcome — it is a throughput knob
	// only, which is why it does not appear in CacheKey.
	Lanes int

	// compileOnce guards the one-time validate-and-compile step; all
	// per-pair work (validation, Rule evaluation, range checks, null
	// classification) happens exactly once per protocol value.
	compileOnce sync.Once
	compiled    *popTable
	compileErr  error
	// compileCalls counts executions of the compile step, for tests.
	compileCalls int
}

// DoneRule is one clause of a compiled decision predicate: the execution
// is decided with winner Winner once every state listed in Zero has count
// zero. See PopulationProtocol.DoneWhenZero.
type DoneRule struct {
	// Zero lists the states whose counts must all be zero.
	Zero []int
	// Winner is the decided opinion when the clause fires: 0 for the
	// initial majority, 1 for the minority, −1 for a stuck undecided
	// execution.
	Winner int
}

// Name implements consensus.Protocol.
func (p *PopulationProtocol) Name() string { return p.ProtocolName }

// CacheKey implements sweep.CacheKeyer: unlike Name it includes the state
// count and the kernel, so switching kernels (which legitimately changes
// individual trial outcomes, though not their law) cannot replay stale
// cached probes.
func (p *PopulationProtocol) CacheKey() string {
	return fmt.Sprintf("pop:%s|states=%d|kernel=%s", p.ProtocolName, p.NumStates, p.Kernel)
}

// validate checks the protocol wiring.
func (p *PopulationProtocol) validate() error {
	if p.NumStates < 2 {
		return fmt.Errorf("protocols: %q needs at least 2 states", p.ProtocolName)
	}
	if p.Rule == nil || p.Done == nil {
		return fmt.Errorf("protocols: %q missing rule or done predicate", p.ProtocolName)
	}
	if p.MajorityState < 0 || p.MajorityState >= p.NumStates ||
		p.MinorityState < 0 || p.MinorityState >= p.NumStates {
		return fmt.Errorf("protocols: %q has out-of-range initial states", p.ProtocolName)
	}
	for _, rule := range p.DoneWhenZero {
		if len(rule.Zero) == 0 {
			return fmt.Errorf("protocols: %q has a DoneWhenZero rule with an empty zero set", p.ProtocolName)
		}
		for _, s := range rule.Zero {
			if s < 0 || s >= p.NumStates {
				return fmt.Errorf("protocols: %q DoneWhenZero references out-of-range state %d", p.ProtocolName, s)
			}
		}
	}
	return nil
}

// popTable is a protocol compiled to a flat NumStates² transition table:
// successor states and null classification per ordered pair, with the
// per-pair Rule range checks already done. Pair (s, t) lives at index
// s·NumStates + t.
type popTable struct {
	states int
	// ni and nr are the successor states of initiator and responder.
	ni, nr []int
	// null marks pairs that change neither agent.
	null []bool
	// eff lists the non-null pair indices, the only ones the batch kernel
	// ever weighs or samples; effS and effT are their unpacked
	// (initiator, responder) states, precomputed to keep division out of
	// the hot loop.
	eff        []int32
	effS, effT []int32
	// effNi and effNr are ni and nr re-indexed by effective-pair position,
	// so the lockstep fire path applies a sampled transition without the
	// second indirection through eff.
	effNi, effNr []int32
	// doneZero is the compiled DoneWhenZero predicate in rule order, each
	// rule its zero set plus winner; empty when the protocol declares
	// none, in which case kernels must call the Done closure.
	doneZero []compiledDoneRule
}

// compiledDoneRule is DoneRule with the state set in the int32 form the
// lockstep decide loop indexes count planes with.
type compiledDoneRule struct {
	zero   []int32
	winner int32
}

// compile validates the protocol and builds the transition table, once.
// Subsequent calls (every Trial after the first) reuse the result without
// re-validating or re-evaluating Rule.
func (p *PopulationProtocol) compile() (*popTable, error) {
	p.compileOnce.Do(func() {
		p.compileCalls++
		if err := p.validate(); err != nil {
			p.compileErr = err
			return
		}
		s := p.NumStates
		tab := &popTable{
			states: s,
			ni:     make([]int, s*s),
			nr:     make([]int, s*s),
			null:   make([]bool, s*s),
		}
		for a := 0; a < s; a++ {
			for b := 0; b < s; b++ {
				na, nb := p.Rule(a, b)
				if na < 0 || na >= s || nb < 0 || nb >= s {
					p.compileErr = fmt.Errorf("protocols: %q rule produced out-of-range states (%d, %d)", p.ProtocolName, na, nb)
					return
				}
				k := a*s + b
				tab.ni[k], tab.nr[k] = na, nb
				tab.null[k] = na == a && nb == b
				if !tab.null[k] {
					tab.eff = append(tab.eff, int32(k))
					tab.effS = append(tab.effS, int32(a))
					tab.effT = append(tab.effT, int32(b))
					tab.effNi = append(tab.effNi, int32(na))
					tab.effNr = append(tab.effNr, int32(nb))
				}
			}
		}
		for _, rule := range p.DoneWhenZero {
			zero := make([]int32, len(rule.Zero))
			for i, st := range rule.Zero {
				zero[i] = int32(st)
			}
			tab.doneZero = append(tab.doneZero, compiledDoneRule{zero: zero, winner: int32(rule.Winner)})
		}
		p.compiled = tab
	})
	return p.compiled, p.compileErr
}

// maxInteractions resolves the interaction budget for population size n.
func (p *PopulationProtocol) maxInteractions(n int) int {
	if p.MaxInteractionsFor != nil {
		if m := p.MaxInteractionsFor(n); m > 0 {
			return m
		}
	}
	logN := 1
	for v := n; v > 1; v >>= 1 {
		logN++
	}
	return 400 * n * logN
}

// Trial implements consensus.Protocol: it runs one execution with a
// majority of a = (n+delta)/2 agents and a minority of b = (n−delta)/2
// agents and reports whether the initial majority's opinion won.
func (p *PopulationProtocol) Trial(n, delta int, src *rng.Source) (bool, error) {
	won, _, err := p.run(n, delta, src)
	return won, err
}

// run is Trial plus the number of interactions consumed, for benchmarks
// and the kernel-equivalence tests.
func (p *PopulationProtocol) run(n, delta int, src *rng.Source) (won bool, interactions int, err error) {
	tab, err := p.compile()
	if err != nil {
		return false, 0, err
	}
	if n < 2 {
		return false, 0, fmt.Errorf("protocols: population %d too small", n)
	}
	if delta < 0 || (n-delta)%2 != 0 || delta > n-2 {
		return false, 0, fmt.Errorf("protocols: infeasible gap %d for n=%d", delta, n)
	}
	b := (n - delta) / 2
	a := n - b

	counts := make([]int, p.NumStates)
	counts[p.MajorityState] += a
	counts[p.MinorityState] += b

	if p.Kernel == KernelPerEvent {
		return p.runPerEvent(tab, counts, n, src)
	}
	// KernelLockstep deliberately shares this path: one lockstep lane
	// consumes its stream exactly as runBatch does, so a single Trial is
	// the scalar replay of what the block engine computes for that lane.
	return p.runBatch(tab, counts, n, src)
}

// runPerEvent simulates every interaction individually. For a given random
// stream it is byte-identical to the historical event loop: one Intn(n)
// draw for the initiator and one Intn(n−1) draw for the responder per
// interaction, null or not. Done is only re-evaluated after an interaction
// actually changed a count — it is a pure function of the counts, so
// skipping it on null interactions cannot change the stopping time.
//
//lint:hotpath
func (p *PopulationProtocol) runPerEvent(tab *popTable, counts []int, n int, src *rng.Source) (bool, int, error) {
	maxInteractions := p.maxInteractions(n)
	changed := true
	for step := 0; step < maxInteractions; step++ {
		if changed {
			if done, winner := p.Done(counts); done {
				return winner == 0, step, nil
			}
			changed = false
		}
		initiator := sampleState(counts, n, src)
		// The responder is a distinct agent: discount the initiator.
		counts[initiator]--
		responder := sampleState(counts, n-1, src)
		counts[initiator]++

		k := initiator*tab.states + responder
		if tab.null[k] {
			continue
		}
		counts[initiator]--
		counts[responder]--
		counts[tab.ni[k]]++
		counts[tab.nr[k]]++
		changed = true
	}
	// Did not stabilize within the budget: count as failure.
	return false, maxInteractions, nil
}

// runBatch simulates the same process, skipping runs of null interactions
// without touching the counts.
//
// In a state with counts c over a population of n agents, an ordered pair
// (s, t) of distinct agents is selected with probability
// c_s·(c_t − [s=t]) / (n·(n−1)); the pair is null when Rule changes
// neither agent. With W the total weight of non-null pairs, each
// interaction is effective with probability W / n(n−1), independently,
// until the counts change — so a maximal run of nulls is skipped either
// tick by tick with one uniform each (moderate null fractions) or in a
// single Geometric draw (null-dominated states, where the geometric's
// logarithm amortizes over many ticks). Both charge the skipped ticks to
// the interaction counter, so the MaxInteractionsFor budget binds exactly
// as in the per-event kernel. The effective pair itself follows the
// conditional distribution weight/W, sampled by integer weights with no
// floating-point error.
func (p *PopulationProtocol) runBatch(tab *popTable, counts []int, n int, src *rng.Source) (bool, int, error) {
	maxInteractions := p.maxInteractions(n)
	total := int64(n) * int64(n-1)
	ftotal := float64(total)
	// Per-effective-pair weights, in tab.eff order.
	weights := make([]int64, len(tab.eff))
	step := 0
	//lint:hotpath
	for {
		// Budget before Done, matching the per-event loop: a trial whose
		// final permitted interaction reaches consensus still scores as
		// undecided, because the loop never observes the final state.
		if step >= maxInteractions {
			return false, step, nil
		}
		if done, winner := p.Done(counts); done {
			return winner == 0, step, nil
		}

		// One pass over the non-null pairs: weight of each and their sum.
		var w int64
		for i := range tab.eff {
			s, t := tab.effS[i], tab.effT[i]
			cs := int64(counts[s])
			ct := int64(counts[t])
			if t == s {
				ct--
				if ct < 0 {
					ct = 0
				}
			}
			wi := cs * ct
			weights[i] = wi
			w += wi
		}
		if w == 0 {
			// Every selectable pair is null: no count can ever change
			// again and Done can never flip, so the per-event loop
			// would spin until the budget ran out.
			return false, maxInteractions, nil
		}

		if w < total {
			fw := float64(w)
			if 8*w >= total {
				// Moderate null fraction (expected run below ~8 ticks):
				// skip nulls tick by tick, one uniform each; cheaper
				// than the geometric's logarithms. Each tick is
				// effective with probability w/total; the loop ends on
				// the first effective one.
				for src.Float64()*ftotal >= fw {
					step++
					if step >= maxInteractions {
						return false, step, nil
					}
				}
			} else {
				// Null-dominated state: one geometric draw replaces
				// the whole run of null ticks.
				remaining := maxInteractions - step
				nulls := src.GeometricCapped(fw/ftotal, remaining)
				if nulls >= remaining {
					return false, maxInteractions, nil
				}
				step += nulls
			}
		}
		// The effective interaction itself consumes one tick.
		step++

		// Sample the effective pair proportionally to its integer weight.
		v := int64(src.Uint64N(uint64(w)))
		pair := -1
		for i, wi := range weights {
			v -= wi
			if v < 0 {
				pair = i
				break
			}
		}
		// Unreachable: the weights sum to exactly w. Guard anyway.
		if pair < 0 {
			//lint:ignore hotpath unreachable guard — this return never executes, so its allocation cannot cost an event
			return false, step, fmt.Errorf("protocols: %q effective-pair sampling overran its weight", p.ProtocolName)
		}

		k := tab.eff[pair]
		counts[tab.effS[pair]]--
		counts[tab.effT[pair]]--
		counts[tab.ni[k]]++
		counts[tab.nr[k]]++
	}
}

// sampleState picks a state index with probability counts[s]/total.
func sampleState(counts []int, total int, src *rng.Source) int {
	u := src.Intn(total)
	acc := 0
	for s, c := range counts {
		acc += c
		if u < acc {
			return s
		}
	}
	// Unreachable when total == sum(counts); guard for safety.
	return len(counts) - 1
}

// Three-state approximate majority protocol (Angluin, Aspnes, Eisenstat
// 2008). States: amX and amY are the two opinions, amBlank is undecided.
// Rules (one-way: only the responder changes):
//
//	(X, Y) → (X, blank)   (Y, X) → (Y, blank)
//	(X, blank) → (X, X)   (Y, blank) → (Y, Y)
//
// It solves approximate majority in O(n log n) interactions w.h.p. when the
// initial gap is Ω(√n · log n).
const (
	amX = iota
	amY
	amBlank
)

// NewThreeStateAM returns the 3-state approximate majority protocol, with
// the majority holding opinion X.
func NewThreeStateAM() *PopulationProtocol {
	return &PopulationProtocol{
		ProtocolName: "3-state approximate majority (Angluin et al.)",
		NumStates:    3,
		Rule: func(initiator, responder int) (int, int) {
			switch {
			case initiator == amX && responder == amY:
				return amX, amBlank
			case initiator == amY && responder == amX:
				return amY, amBlank
			case initiator == amX && responder == amBlank:
				return amX, amX
			case initiator == amY && responder == amBlank:
				return amY, amY
			default:
				return initiator, responder
			}
		},
		MajorityState: amX,
		MinorityState: amY,
		Done: func(counts []int) (bool, int) {
			switch {
			case counts[amY] == 0 && counts[amBlank] == 0:
				return true, 0
			case counts[amX] == 0 && counts[amBlank] == 0:
				return true, 1
			default:
				return false, -1
			}
		},
		DoneWhenZero: []DoneRule{
			{Zero: []int{amY, amBlank}, Winner: 0},
			{Zero: []int{amX, amBlank}, Winner: 1},
		},
	}
}

// Four-state exact majority protocol (Draief–Vojnović 2012; Mertzios et al.
// 2014), presented as binary interval consensus. States: strong opinions
// exS0/exS1 and weak opinions exW0/exW1. Rules (both agents may change):
//
//	(S0, S1) → (W0, W1)  — strong opinions annihilate into weak ones
//	(S0, W1) → (S0, W0)  — strong converts opposing weak
//	(S1, W0) → (S1, W1)
//
// plus the mirrored initiator/responder cases. The protocol reaches the
// correct majority opinion with probability 1 for any Δ > 0, in O(n²)
// expected interactions in the worst case.
const (
	exS0 = iota
	exS1
	exW0
	exW1
)

// NewFourStateExact returns the 4-state exact majority protocol, with the
// majority holding opinion 0.
func NewFourStateExact() *PopulationProtocol {
	rule := func(a, b int) (int, int) {
		switch {
		case a == exS0 && b == exS1:
			return exW0, exW1
		case a == exS1 && b == exS0:
			return exW1, exW0
		case a == exS0 && b == exW1:
			return exS0, exW0
		case a == exW1 && b == exS0:
			return exW0, exS0
		case a == exS1 && b == exW0:
			return exS1, exW1
		case a == exW0 && b == exS1:
			return exW1, exS1
		default:
			return a, b
		}
	}
	return &PopulationProtocol{
		ProtocolName:  "4-state exact majority (Draief-Vojnović)",
		NumStates:     4,
		Rule:          rule,
		MajorityState: exS0,
		MinorityState: exS1,
		Done: func(counts []int) (bool, int) {
			opinion0 := counts[exS0] + counts[exW0]
			opinion1 := counts[exS1] + counts[exW1]
			switch {
			case opinion1 == 0:
				return true, 0
			case opinion0 == 0:
				return true, 1
			case counts[exS0]+counts[exS1] == 0:
				// All strong tokens annihilated (possible only
				// from a tie): weak opinions can never change
				// again, so the execution is stuck undecided.
				return true, -1
			default:
				return false, -1
			}
		},
		DoneWhenZero: []DoneRule{
			{Zero: []int{exS1, exW1}, Winner: 0},
			{Zero: []int{exS0, exW0}, Winner: 1},
			{Zero: []int{exS0, exS1}, Winner: -1},
		},
		// Exact majority needs Θ(n²) interactions for small gaps.
		MaxInteractionsFor: func(n int) int { return 200 * n * n },
	}
}
