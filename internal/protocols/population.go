// Package protocols implements the baseline majority-consensus protocols the
// paper compares against or cites as prior work (§2.2):
//
//   - a population-protocol engine (static population, uniformly random
//     ordered pairwise interactions) with the classic 3-state approximate
//     majority protocol of Angluin, Aspnes, and Eisenstat and the 4-state
//     exact majority protocol of Draief–Vojnović / Mertzios et al.;
//   - the chemical-reaction-network protocols of Condon et al. ("single-B",
//     "double-B", "heavy-B", and the two-species trimolecular rule), built
//     on the internal/crn engine; and
//   - the resource-consumer model of Andaur et al. (bounded, non-mass-action
//     growth, no individual deaths, non-self-destructive interference) and
//     the Cho et al. special case (δ = 0, self-destructive) of the LV model.
//
// Every protocol satisfies the consensus.Protocol interface, so the same
// estimator and threshold search drive all of them.
package protocols

import (
	"fmt"

	"lvmajority/internal/rng"
)

// PopulationProtocol is a population protocol over a small state space with
// uniformly random ordered pairwise interactions: at each step an ordered
// pair of distinct agents (initiator, responder) is chosen uniformly at
// random and both agents update according to Rule.
type PopulationProtocol struct {
	// ProtocolName labels the protocol.
	ProtocolName string
	// NumStates is the number of agent states.
	NumStates int
	// Rule maps (initiator, responder) states to their successor states.
	Rule func(initiator, responder int) (int, int)
	// MajorityState and MinorityState are the initial states of
	// majority- and minority-opinion agents.
	MajorityState, MinorityState int
	// Done inspects the per-state counts and reports whether the
	// execution has stabilized, and if so which opinion won (0 for the
	// initial majority's opinion, 1 for the minority's, −1 for neither).
	Done func(counts []int) (done bool, winner int)
	// MaxInteractionsFor bounds the trial length as a function of n;
	// nil uses 400·n·(log₂ n + 1), generous for protocols converging in
	// O(n log n) interactions.
	MaxInteractionsFor func(n int) int
}

// Name implements consensus.Protocol.
func (p *PopulationProtocol) Name() string { return p.ProtocolName }

// validate checks the protocol wiring.
func (p *PopulationProtocol) validate() error {
	if p.NumStates < 2 {
		return fmt.Errorf("protocols: %q needs at least 2 states", p.ProtocolName)
	}
	if p.Rule == nil || p.Done == nil {
		return fmt.Errorf("protocols: %q missing rule or done predicate", p.ProtocolName)
	}
	if p.MajorityState < 0 || p.MajorityState >= p.NumStates ||
		p.MinorityState < 0 || p.MinorityState >= p.NumStates {
		return fmt.Errorf("protocols: %q has out-of-range initial states", p.ProtocolName)
	}
	return nil
}

// Trial implements consensus.Protocol: it runs one execution with a
// majority of a = (n+delta)/2 agents and a minority of b = (n−delta)/2
// agents and reports whether the initial majority's opinion won.
func (p *PopulationProtocol) Trial(n, delta int, src *rng.Source) (bool, error) {
	if err := p.validate(); err != nil {
		return false, err
	}
	if n < 2 {
		return false, fmt.Errorf("protocols: population %d too small", n)
	}
	if delta < 0 || (n-delta)%2 != 0 || delta > n-2 {
		return false, fmt.Errorf("protocols: infeasible gap %d for n=%d", delta, n)
	}
	b := (n - delta) / 2
	a := n - b

	counts := make([]int, p.NumStates)
	counts[p.MajorityState] += a
	counts[p.MinorityState] += b

	maxInteractions := 0
	if p.MaxInteractionsFor != nil {
		maxInteractions = p.MaxInteractionsFor(n)
	}
	if maxInteractions <= 0 {
		logN := 1
		for v := n; v > 1; v >>= 1 {
			logN++
		}
		maxInteractions = 400 * n * logN
	}

	for step := 0; step < maxInteractions; step++ {
		if done, winner := p.Done(counts); done {
			return winner == 0, nil
		}
		initiator := sampleState(counts, n, src)
		// The responder is a distinct agent: discount the initiator.
		counts[initiator]--
		responder := sampleState(counts, n-1, src)
		counts[initiator]++

		ni, nr := p.Rule(initiator, responder)
		if ni < 0 || ni >= p.NumStates || nr < 0 || nr >= p.NumStates {
			return false, fmt.Errorf("protocols: %q rule produced out-of-range states (%d, %d)", p.ProtocolName, ni, nr)
		}
		counts[initiator]--
		counts[responder]--
		counts[ni]++
		counts[nr]++
	}
	// Did not stabilize within the budget: count as failure.
	return false, nil
}

// sampleState picks a state index with probability counts[s]/total.
func sampleState(counts []int, total int, src *rng.Source) int {
	u := src.Intn(total)
	acc := 0
	for s, c := range counts {
		acc += c
		if u < acc {
			return s
		}
	}
	// Unreachable when total == sum(counts); guard for safety.
	return len(counts) - 1
}

// Three-state approximate majority protocol (Angluin, Aspnes, Eisenstat
// 2008). States: amX and amY are the two opinions, amBlank is undecided.
// Rules (one-way: only the responder changes):
//
//	(X, Y) → (X, blank)   (Y, X) → (Y, blank)
//	(X, blank) → (X, X)   (Y, blank) → (Y, Y)
//
// It solves approximate majority in O(n log n) interactions w.h.p. when the
// initial gap is Ω(√n · log n).
const (
	amX = iota
	amY
	amBlank
)

// NewThreeStateAM returns the 3-state approximate majority protocol, with
// the majority holding opinion X.
func NewThreeStateAM() *PopulationProtocol {
	return &PopulationProtocol{
		ProtocolName: "3-state approximate majority (Angluin et al.)",
		NumStates:    3,
		Rule: func(initiator, responder int) (int, int) {
			switch {
			case initiator == amX && responder == amY:
				return amX, amBlank
			case initiator == amY && responder == amX:
				return amY, amBlank
			case initiator == amX && responder == amBlank:
				return amX, amX
			case initiator == amY && responder == amBlank:
				return amY, amY
			default:
				return initiator, responder
			}
		},
		MajorityState: amX,
		MinorityState: amY,
		Done: func(counts []int) (bool, int) {
			switch {
			case counts[amY] == 0 && counts[amBlank] == 0:
				return true, 0
			case counts[amX] == 0 && counts[amBlank] == 0:
				return true, 1
			default:
				return false, -1
			}
		},
	}
}

// Four-state exact majority protocol (Draief–Vojnović 2012; Mertzios et al.
// 2014), presented as binary interval consensus. States: strong opinions
// exS0/exS1 and weak opinions exW0/exW1. Rules (both agents may change):
//
//	(S0, S1) → (W0, W1)  — strong opinions annihilate into weak ones
//	(S0, W1) → (S0, W0)  — strong converts opposing weak
//	(S1, W0) → (S1, W1)
//
// plus the mirrored initiator/responder cases. The protocol reaches the
// correct majority opinion with probability 1 for any Δ > 0, in O(n²)
// expected interactions in the worst case.
const (
	exS0 = iota
	exS1
	exW0
	exW1
)

// NewFourStateExact returns the 4-state exact majority protocol, with the
// majority holding opinion 0.
func NewFourStateExact() *PopulationProtocol {
	rule := func(a, b int) (int, int) {
		switch {
		case a == exS0 && b == exS1:
			return exW0, exW1
		case a == exS1 && b == exS0:
			return exW1, exW0
		case a == exS0 && b == exW1:
			return exS0, exW0
		case a == exW1 && b == exS0:
			return exW0, exS0
		case a == exS1 && b == exW0:
			return exS1, exW1
		case a == exW0 && b == exS1:
			return exW1, exS1
		default:
			return a, b
		}
	}
	return &PopulationProtocol{
		ProtocolName:  "4-state exact majority (Draief-Vojnović)",
		NumStates:     4,
		Rule:          rule,
		MajorityState: exS0,
		MinorityState: exS1,
		Done: func(counts []int) (bool, int) {
			opinion0 := counts[exS0] + counts[exW0]
			opinion1 := counts[exS1] + counts[exW1]
			switch {
			case opinion1 == 0:
				return true, 0
			case opinion0 == 0:
				return true, 1
			case counts[exS0]+counts[exS1] == 0:
				// All strong tokens annihilated (possible only
				// from a tie): weak opinions can never change
				// again, so the execution is stuck undecided.
				return true, -1
			default:
				return false, -1
			}
		},
		// Exact majority needs Θ(n²) interactions for small gaps.
		MaxInteractionsFor: func(n int) int { return 200 * n * n },
	}
}
