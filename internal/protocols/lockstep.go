package protocols

import (
	"fmt"
	"math"
	"math/bits"

	"lvmajority/internal/rng"
)

// Lane widths of the lockstep kernel. The default is wide enough that the
// out-of-order window always has several independent lanes' instruction
// streams to overlap (the scalar batch kernel is latency-bound on one
// serial generator chain) while the whole working set — count rows,
// generator states, interaction counters — stays inside L1.
const (
	DefaultLockstepLanes = 128
	MaxLockstepLanes     = 256
)

// Layout of a lane's record in lockstepEngine.rec: stride-8 uint64s,
// words 0..3 generator state, word 4 the step counter with the dirty
// flag in the top bit, word 5 the wins index.
const (
	recShift = 3 // record base = lane << recShift
	recStep  = 4
	recWin   = 5
	dirtyBit = uint64(1) << 63
	stepMask = dirtyBit - 1
)

// TrialBlockLanes implements the consensus.BlockTrialer capability: a
// positive return asks the Monte-Carlo pool to hand this protocol whole
// trial blocks of that width instead of single trials. Only the lockstep
// kernel opts in; the other kernels run trial-at-a-time.
func (p *PopulationProtocol) TrialBlockLanes() int {
	if p.Kernel != KernelLockstep {
		return 0
	}
	if p.Lanes != 0 {
		return p.Lanes
	}
	return DefaultLockstepLanes
}

// NewTrialBlock validates the configuration once and returns a block
// runner advancing up to TrialBlockLanes trials in lockstep. The runner is
// stateful (it owns the lane planes) and not safe for concurrent use; the
// pool builds one per worker. Replicate rep of a block draws only from
// rng.NewStream(seed, rep) — exactly the stream and exactly the draw
// sequence the batch kernel's scalar Trial would consume — so results are
// byte-identical to KernelBatch, for every worker count and every lane
// packing.
func (p *PopulationProtocol) NewTrialBlock(n, delta int) (func(seed uint64, lo, hi int, wins []bool) error, error) {
	e, err := p.newLockstep(n, delta)
	if err != nil {
		return nil, err
	}
	return e.runBlock, nil
}

// lockstepEngine is the structure-of-arrays block engine behind
// KernelLockstep. All per-lane state lives in flat lane-major planes —
// counts row, generator words, interaction counter — so one lane's whole
// round touches two or three cache lines and the rest of the round runs
// in registers.
//
// One round advances every active lane by exactly one effective
// interaction (or retires it), replaying the scalar batch loop's phases
// per lane: decide (budget, Done), weigh (the non-null pair pass), skip
// nulls (tick-by-tick uniforms or one geometric draw), and fire (Lemire
// bounded draw, integer-weight pair scan, count update). The phases are
// fused into a single pass per lane: the generator state loads once per
// round into registers and every tick draw is an inlined rng.Next4, so a
// round costs four state loads and stores, a handful of count-row
// accesses, and register arithmetic. The speedup over the scalar kernel
// is instruction-level parallelism: consecutive lanes have no data
// dependence, so the CPU overlaps their rounds — but only as far as it
// can speculate past the round's branches. The tick loop's exit is
// decided by the draw itself, which makes a naive "draw until effective"
// loop mispredict on most rounds and flush exactly the cross-lane work
// the layout exists to expose. runBlock therefore speculates in
// software: each tick iteration draws two uniforms unconditionally,
// classifies both with sign-bit arithmetic instead of compares-and-
// branches, and selects the surviving generator state with a mask blend,
// so the only data-dependent branch left is the loop-back when both
// draws were nulls (~15% taken in the tick regime, cheap to predict).
// The unconsumed second draw is discarded by keeping the one-draw state,
// which preserves the scalar kernel's draw-for-draw stream consumption.
//
// Decided lanes retire immediately: their slot is refilled with the next
// replicate of the block while any remain, then swap-compacted away, so
// the tail of a block never serializes on stragglers.
type lockstepEngine struct {
	p   *PopulationProtocol
	tab *popTable

	n, a, b         int
	states          int
	maxInteractions int
	total           int64
	ftotal          float64
	lanes           int // R: lane capacity

	counts []uint32 // [lane*states + state]

	// rec packs everything else a lane owns into one stride-8 record —
	// words 0..3 the xoshiro256++ state, word 4 the interaction counter
	// with the dirty flag in its top bit, word 5 the index into the
	// block's wins slice. One slice header instead of four keeps the
	// sweeps' register pressure down (the hot loop's live set is what
	// spills), the base index is a shift, and a lane's whole record sits
	// in one cache line.
	rec []uint64

	scratch []int // states; gathered counts for the Done closure fallback

	// Flattened DoneWhenZero rules (empty → Done closure fallback):
	// rule rI is decided when the counts of states
	// ruleState[ruleStart[rI]:ruleStart[rI+1]] are all zero, and
	// ruleWin[rI] names the winner.
	ruleStart []int32
	ruleState []int32
	ruleWin   []int32

	// Per-effective-pair tables, in compiled pair order. pairDadj is 1 on
	// the diagonal (t == s, where one agent must not be counted twice)
	// and 0 elsewhere, so cs·(ct − dadj) is the selection weight in both
	// cases. deltaState/deltaVal hold each pair's net count update —
	// commonly two entries, where the literal four ±1 updates of the
	// scalar loop often cancel.
	pairS, pairT []int32
	pairDadj     []int64
	deltaStart   []int32
	deltaState   []int32
	deltaVal     []uint32 // two's-complement ±k, added to uint32 counts
	deltaPacked  []uint64 // deltaState<<32 | deltaVal: one load per update

	// wv stages the current lane's per-pair weights between the weigh
	// pass and the fire scan. One tiny row reused for every lane: the
	// scan then subtracts staged values instead of redoing the count
	// loads and multiplies on its serial remainder chain.
	wv []int64

	// fast4 selects the straight-line sweep specialized for the dominant
	// compiled shape — exactly four effective off-diagonal pairs, two
	// net count updates per pair, and DoneWhenZero rules — which every
	// catalog protocol with three states compiles to. The generic
	// sweep's tiny dynamic-trip loops (weigh, scan, deltas, rules) each
	// retire a taken branch per iteration, and the front end redirects
	// fetch on every one; the specialized sweep unrolls them into
	// branch-free straight-line code and keeps the four pair weights in
	// registers. wire4 byte-packs the four (s, t) state pairs so the
	// whole wiring rides in one register.
	fast4 bool
	wire4 uint64

	active  int
	nextRep int
	seed    uint64

	// ticks accumulates the interaction ticks of every finished lane
	// (including skipped nulls), the same accounting the scalar kernels
	// report from run; benchmarks read it to price one simulated event.
	ticks int64
}

// newLockstep validates the protocol and the (n, delta) configuration once
// and allocates the lane planes. Everything runBlock touches afterwards is
// preallocated here, so the steady state of a block run performs no
// allocation at all.
func (p *PopulationProtocol) newLockstep(n, delta int) (*lockstepEngine, error) {
	tab, err := p.compile()
	if err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, fmt.Errorf("protocols: population %d too small", n)
	}
	if delta < 0 || (n-delta)%2 != 0 || delta > n-2 {
		return nil, fmt.Errorf("protocols: infeasible gap %d for n=%d", delta, n)
	}
	if n > math.MaxUint32 {
		return nil, fmt.Errorf("protocols: population %d overflows the lockstep count planes", n)
	}
	if p.Lanes < 0 || p.Lanes > MaxLockstepLanes {
		return nil, fmt.Errorf("protocols: lockstep lane width %d outside 1..%d", p.Lanes, MaxLockstepLanes)
	}
	r := p.TrialBlockLanes()
	if r == 0 {
		// The engine is usable with any kernel setting (tests drive it
		// directly); default the width when the capability is off.
		r = DefaultLockstepLanes
	}
	states := p.NumStates
	b := (n - delta) / 2
	e := &lockstepEngine{
		p: p, tab: tab,
		n: n, a: n - b, b: b,
		states:          states,
		maxInteractions: p.maxInteractions(n),
		total:           int64(n) * int64(n-1),
		ftotal:          float64(int64(n) * int64(n-1)),
		lanes:           r,
		counts:          make([]uint32, r*states),
		rec:             make([]uint64, r<<recShift),
		scratch:         make([]int, states),
	}
	e.ruleStart = append(e.ruleStart, 0)
	for _, rule := range tab.doneZero {
		e.ruleState = append(e.ruleState, rule.zero...)
		e.ruleStart = append(e.ruleStart, int32(len(e.ruleState)))
		e.ruleWin = append(e.ruleWin, rule.winner)
	}
	e.deltaStart = append(e.deltaStart, 0)
	delta4 := make([]int, states)
	for i := range tab.eff {
		s, t := tab.effS[i], tab.effT[i]
		e.pairS = append(e.pairS, s)
		e.pairT = append(e.pairT, t)
		var dadj int64
		if s == t {
			dadj = 1
		}
		e.pairDadj = append(e.pairDadj, dadj)
		for st := range delta4 {
			delta4[st] = 0
		}
		delta4[s]--
		delta4[t]--
		delta4[tab.effNi[i]]++
		delta4[tab.effNr[i]]++
		for st, dv := range delta4 {
			if dv != 0 {
				e.deltaState = append(e.deltaState, int32(st))
				e.deltaVal = append(e.deltaVal, uint32(int32(dv)))
			}
		}
		e.deltaStart = append(e.deltaStart, int32(len(e.deltaState)))
	}
	for d := range e.deltaState {
		e.deltaPacked = append(e.deltaPacked, uint64(uint32(e.deltaState[d]))<<32|uint64(e.deltaVal[d]))
	}
	e.wv = make([]int64, len(e.pairS))
	e.fast4 = len(e.pairS) == 4 && len(tab.doneZero) > 0 && states <= math.MaxUint8
	for i := 0; e.fast4 && i < 4; i++ {
		if e.deltaStart[i+1]-e.deltaStart[i] != 2 || e.pairDadj[i] != 0 {
			e.fast4 = false
		}
	}
	if e.fast4 {
		for i := 0; i < 4; i++ {
			e.wire4 |= uint64(uint8(e.pairS[i]))<<(16*i) | uint64(uint8(e.pairT[i]))<<(16*i+8)
		}
	}
	return e, nil
}

// initLane seeds lane li with replicate rep: the replicate's own
// index-keyed stream, fresh initial counts, a zero interaction counter
// marked dirty so the first round decides.
func (e *lockstepEngine) initLane(li, rep, lo int) {
	s0, s1, s2, s3 := rng.StreamState4(e.seed, uint64(rep))
	b := li << recShift
	e.rec[b], e.rec[b+1], e.rec[b+2], e.rec[b+3] = s0, s1, s2, s3
	e.rec[b+recStep] = dirtyBit
	e.rec[b+recWin] = uint64(rep - lo)
	base := li * e.states
	for s := 0; s < e.states; s++ {
		e.counts[base+s] = 0
	}
	e.counts[base+e.p.MajorityState] += uint32(e.a)
	e.counts[base+e.p.MinorityState] += uint32(e.b)
}

// finishLane records lane li's outcome and frees its slot: refilled with
// the block's next replicate while any remain, otherwise swap-compacted
// against the last active lane. The caller re-examines index li, which now
// holds either the fresh replicate or the swapped-in lane.
func (e *lockstepEngine) finishLane(li int, won bool, wins []bool, hi, lo int) {
	b := li << recShift
	wins[e.rec[b+recWin]] = won
	e.ticks += int64(e.rec[b+recStep] & stepMask)
	if e.nextRep < hi {
		e.initLane(li, e.nextRep, lo)
		e.nextRep++
		return
	}
	e.active--
	last := e.active
	if li == last {
		return
	}
	ns := e.states
	copy(e.counts[li*ns:li*ns+ns], e.counts[last*ns:last*ns+ns])
	copy(e.rec[b:b+6], e.rec[last<<recShift:last<<recShift+6])
}

// runBlock runs replicates [lo, hi), writing each outcome to wins[rep-lo].
// Blocks wider than the lane capacity are handled by refilling retired
// lanes, so any block size is accepted.
func (e *lockstepEngine) runBlock(seed uint64, lo, hi int, wins []bool) error {
	if hi < lo {
		return fmt.Errorf("protocols: lockstep block [%d, %d) is inverted", lo, hi)
	}
	if len(wins) != hi-lo {
		return fmt.Errorf("protocols: lockstep block [%d, %d) with %d result slots", lo, hi, len(wins))
	}
	e.seed = seed
	e.active = hi - lo
	if e.active > e.lanes {
		e.active = e.lanes
	}
	e.nextRep = lo + e.active
	for li := 0; li < e.active; li++ {
		e.initLane(li, lo+li, lo)
	}
	if e.fast4 {
		return e.sweep4(lo, hi, wins)
	}
	return e.sweepN(lo, hi, wins)
}

// sweepN is the generic round loop, correct for any compiled shape. It
// decides every round (the Done closure fallback has no zero-crossing
// structure to exploit) and walks the pair and delta tables with short
// dynamic-trip loops.
//
//lint:hotpath
func (e *lockstepEngine) sweepN(lo, hi int, wins []bool) error {
	ns := e.states
	pairs := len(e.pairS)
	maxI := e.maxInteractions
	total, ftotal := e.total, e.ftotal
	tscale := float64(1<<53) / ftotal
	counts, rec := e.counts, e.rec
	pairS, pairT, pairDadj, wv := e.pairS, e.pairT, e.pairDadj, e.wv
	deltaStart, deltaState, deltaVal := e.deltaStart, e.deltaState, e.deltaVal
	ruleStart, ruleState, ruleWin := e.ruleStart, e.ruleState, e.ruleWin
	nRules := len(ruleWin)

	for active := e.active; active > 0; active = e.active {
		for li := 0; li < active; {
			base := li * ns
			rb := li << recShift
			step := int(rec[rb+recStep] & stepMask)
			// Budget before Done, matching the scalar loop — a lane whose
			// final permitted interaction reaches consensus still scores
			// as undecided, because it never observes the final state.
			if step >= maxI {
				e.finishLane(li, false, wins, hi, lo)
				active = e.active
				continue
			}
			// Decide. The flattened DoneWhenZero rules need a couple of
			// loads from this lane's count row; the closure fallback
			// gathers the row and pays an indirect call.
			if nRules > 0 {
				winner := int32(-2)
				for rI := 0; rI < nRules; rI++ {
					var acc uint32
					for d := ruleStart[rI]; d < ruleStart[rI+1]; d++ {
						acc |= counts[base+int(ruleState[d])]
					}
					if acc == 0 {
						winner = ruleWin[rI]
						break
					}
				}
				if winner != -2 {
					e.finishLane(li, winner == 0, wins, hi, lo)
					active = e.active
					continue
				}
			} else {
				scratch := e.scratch
				for s := 0; s < ns; s++ {
					scratch[s] = int(counts[base+s])
				}
				if isDone, winner := e.p.Done(scratch); isDone {
					e.finishLane(li, winner == 0, wins, hi, lo)
					active = e.active
					continue
				}
			}

			// Weigh: total selection weight of the non-null pairs, staged
			// per pair for the fire scan. The diagonal adjustment
			// cs·(cs−1) is never negative, so the scalar kernel's clamp
			// is implied.
			var w int64
			for i := 0; i < pairs; i++ {
				cs := int64(counts[base+int(pairS[i])])
				ct := int64(counts[base+int(pairT[i])])
				wi := cs * (ct - pairDadj[i])
				wv[i] = wi
				w += wi
			}
			if w == 0 {
				// No selectable effective pair: the counts can never
				// change again, and the scalar loop would spin to the
				// budget. Charge the full budget; the next decide pass
				// retires the lane undecided.
				rec[rb+recStep] = uint64(maxI)
				li++
				continue
			}

			// The lane's generator runs in registers for the rest of the
			// round; every draw below is an inlined state-passing step.
			s0, s1, s2, s3 := rec[rb], rec[rb+1], rec[rb+2], rec[rb+3]
			var u uint64
			if w < total {
				if 8*w >= total {
					// Moderate null fraction: skip nulls tick by tick,
					// one uniform each, ending on the first effective
					// tick — cheaper than the geometric's logarithm.
					//
					// Each iteration draws a speculative pair of
					// uniforms and rolls the generator back to the
					// one-draw state when the first tick was already
					// effective, so the stream consumption matches the
					// scalar draw-until-effective loop exactly while the
					// loop body stays free of data-dependent branches:
					// n1/n2 classify the two ticks with one integer
					// subtract against thr, and the surviving state is
					// a mask blend.
					//
					// thr approximates the integer form of the scalar
					// Float64 compare: fl(k·2⁻⁵³·total) is monotone in
					// the 53-bit draw k, so the compare is a threshold
					// test on k. thr — the hoisted reciprocal scale
					// 2⁵³/total times w, truncated — carries two
					// roundings plus the truncation and the predicate's
					// own rounding, so it sits within ±6 of the true
					// boundary (each error ≤ 2⁻⁵³ relative on a value
					// ≤ 2⁵³). Draws at least 9 away from thr classify
					// with pure integer arithmetic; the window around
					// it (hit with probability ~2⁻⁴⁹) falls back to
					// the original predicate, keeping classification
					// byte-identical to the scalar kernel.
					fw := float64(w)
					thr := uint64(fw * tscale)
					blown := false
					for {
						var u1, u2 uint64
						var t0, t1, t2, t3 uint64
						u1, t0, t1, t2, t3 = rng.Next4(s0, s1, s2, s3)
						u2, s0, s1, s2, s3 = rng.Next4(t0, t1, t2, t3)
						k1 := u1 >> 11
						k2 := u2 >> 11
						n1 := ((k1 - thr) >> 63) ^ 1
						n2 := ((k2 - thr) >> 63) ^ 1
						if k1-thr+8 < 17 {
							n1 = 1
							if float64(k1)/(1<<53)*ftotal < fw {
								n1 = 0
							}
						}
						if k2-thr+8 < 17 {
							n2 = 1
							if float64(k2)/(1<<53)*ftotal < fw {
								n2 = 0
							}
						}
						m := -n1 // all ones when the first tick was a null
						s0 = t0 ^ (m & (t0 ^ s0))
						s1 = t1 ^ (m & (t1 ^ s1))
						s2 = t2 ^ (m & (t2 ^ s2))
						s3 = t3 ^ (m & (t3 ^ s3))
						step += int(n1)
						if step >= maxI {
							// Budget blown on the first null: the scalar
							// loop stops before drawing again, so only
							// the first draw is consumed.
							s0, s1, s2, s3 = t0, t1, t2, t3
							blown = true
							break
						}
						if n1&n2 == 0 {
							break
						}
						step++
						if step >= maxI {
							blown = true
							break
						}
					}
					if blown {
						rec[rb+recStep] = uint64(step)
						rec[rb], rec[rb+1], rec[rb+2], rec[rb+3] = s0, s1, s2, s3
						li++
						continue
					}
				} else {
					// Null-dominated state: one geometric draw replaces
					// the whole run of null ticks.
					remaining := maxI - step
					var nulls int
					nulls, s0, s1, s2, s3 = rng.GeometricCapped4(s0, s1, s2, s3, float64(w)/ftotal, remaining)
					if nulls >= remaining {
						rec[rb+recStep] = uint64(maxI)
						rec[rb], rec[rb+1], rec[rb+2], rec[rb+3] = s0, s1, s2, s3
						li++
						continue
					}
					step += nulls
				}
			}
			// The effective interaction itself consumes one tick.
			step++

			// Fire: Lemire bounded draw (fast path inline, rejection out
			// of line), then the integer-weight pair scan over the staged
			// weights. The scan is branch-free over all compiled pairs:
			// once the running remainder goes negative it stays negative,
			// so counting the non-negative prefixes (the inverted sign
			// bit) names the sampled pair.
			u, s0, s1, s2, s3 = rng.Next4(s0, s1, s2, s3)
			mhi, mlo := bits.Mul64(u, uint64(w))
			if mlo < uint64(w) {
				mhi, s0, s1, s2, s3 = rng.Uint64NRetry4(s0, s1, s2, s3, mhi, mlo, uint64(w))
			}
			// The draw lies under one of the staged weights (mhi < w), so
			// the last pair needs no subtraction: reaching it non-negative
			// already names it.
			v := int64(mhi)
			pair := 0
			for i := 0; i < pairs-1; i++ {
				v -= wv[i]
				pair += int(^uint64(v) >> 63)
			}
			for d := deltaStart[pair]; d < deltaStart[pair+1]; d++ {
				counts[base+int(deltaState[d])] += deltaVal[d]
			}
			rec[rb+recStep] = uint64(step)
			rec[rb], rec[rb+1], rec[rb+2], rec[rb+3] = s0, s1, s2, s3
			li++
		}
	}
	return nil
}

// sweep4 is the round loop specialized for the fast4 shape: four
// effective pairs, two net count updates per pair, DoneWhenZero rules.
// It is byte-for-byte the same computation as sweepN — every draw, every
// comparison, every count update in the same order — with the dynamic
// pair loops unrolled into straight-line code, the four pair weights
// held in registers end to end, and the decide pass gated on the dirty
// flag so it runs only on rounds that follow a zero-crossing count
// update (or open a fresh replicate).
//
//lint:hotpath
func (e *lockstepEngine) sweep4(lo, hi int, wins []bool) error {
	ns := e.states
	maxI := e.maxInteractions
	total, ftotal := e.total, e.ftotal
	tscale := float64(1<<53) / ftotal
	counts, rec := e.counts, e.rec
	deltaPk := e.deltaPacked
	// The pair wiring rides in one register; the rule tables load inside
	// the cold dirty branch. Everything the hot path keeps live has to
	// fit the register file, or the loop head turns into stack reloads.
	wire := e.wire4

	for active := e.active; active > 0; active = e.active {
		for li := 0; li < active; {
			base := li * ns
			rb := li << recShift
			sd := rec[rb+recStep]
			step := int(sd & stepMask)
			if step >= maxI {
				e.finishLane(li, false, wins, hi, lo)
				active = e.active
				continue
			}
			if sd >= dirtyBit {
				rec[rb+recStep] = sd &^ dirtyBit
				ruleStart, ruleState, ruleWin := e.ruleStart, e.ruleState, e.ruleWin
				winner := int32(-2)
				for rI := 0; rI < len(ruleWin); rI++ {
					var acc uint32
					for d := ruleStart[rI]; d < ruleStart[rI+1]; d++ {
						acc |= counts[base+int(ruleState[d])]
					}
					if acc == 0 {
						winner = ruleWin[rI]
						break
					}
				}
				if winner != -2 {
					e.finishLane(li, winner == 0, wins, hi, lo)
					active = e.active
					continue
				}
			}

			w0 := int64(counts[base+int(wire&0xff)]) * int64(counts[base+int(wire>>8&0xff)])
			w1 := int64(counts[base+int(wire>>16&0xff)]) * int64(counts[base+int(wire>>24&0xff)])
			w2 := int64(counts[base+int(wire>>32&0xff)]) * int64(counts[base+int(wire>>40&0xff)])
			w3 := int64(counts[base+int(wire>>48&0xff)]) * int64(counts[base+int(wire>>56)])
			w := w0 + w1 + w2 + w3
			if w == 0 {
				rec[rb+recStep] = uint64(maxI)
				li++
				continue
			}

			s0, s1, s2, s3 := rec[rb], rec[rb+1], rec[rb+2], rec[rb+3]
			var u uint64
			if w < total {
				if 8*w >= total {
					// The speculative two-draw tick loop of sweepN,
					// verbatim; see the comments there.
					fw := float64(w)
					thr := uint64(fw * tscale)
					blown := false
					for {
						var u1, u2 uint64
						var t0, t1, t2, t3 uint64
						u1, t0, t1, t2, t3 = rng.Next4(s0, s1, s2, s3)
						u2, s0, s1, s2, s3 = rng.Next4(t0, t1, t2, t3)
						k1 := u1 >> 11
						k2 := u2 >> 11
						n1 := ((k1 - thr) >> 63) ^ 1
						n2 := ((k2 - thr) >> 63) ^ 1
						if k1-thr+8 < 17 {
							n1 = 1
							if float64(k1)/(1<<53)*ftotal < fw {
								n1 = 0
							}
						}
						if k2-thr+8 < 17 {
							n2 = 1
							if float64(k2)/(1<<53)*ftotal < fw {
								n2 = 0
							}
						}
						m := -n1
						s0 = t0 ^ (m & (t0 ^ s0))
						s1 = t1 ^ (m & (t1 ^ s1))
						s2 = t2 ^ (m & (t2 ^ s2))
						s3 = t3 ^ (m & (t3 ^ s3))
						step += int(n1)
						if step >= maxI {
							s0, s1, s2, s3 = t0, t1, t2, t3
							blown = true
							break
						}
						if n1&n2 == 0 {
							break
						}
						step++
						if step >= maxI {
							blown = true
							break
						}
					}
					if blown {
						rec[rb+recStep] = uint64(step)
						rec[rb], rec[rb+1], rec[rb+2], rec[rb+3] = s0, s1, s2, s3
						li++
						continue
					}
				} else {
					remaining := maxI - step
					var nulls int
					nulls, s0, s1, s2, s3 = rng.GeometricCapped4(s0, s1, s2, s3, float64(w)/ftotal, remaining)
					if nulls >= remaining {
						rec[rb+recStep] = uint64(maxI)
						rec[rb], rec[rb+1], rec[rb+2], rec[rb+3] = s0, s1, s2, s3
						li++
						continue
					}
					step += nulls
				}
			}
			step++

			u, s0, s1, s2, s3 = rng.Next4(s0, s1, s2, s3)
			mhi, mlo := bits.Mul64(u, uint64(w))
			if mlo < uint64(w) {
				mhi, s0, s1, s2, s3 = rng.Uint64NRetry4(s0, s1, s2, s3, mhi, mlo, uint64(w))
			}
			// Unrolled non-negative-prefix scan over the register weights;
			// the last pair needs no subtraction (mhi < w).
			v := int64(mhi)
			v -= w0
			pair := int(^uint64(v) >> 63)
			v -= w1
			pair += int(^uint64(v) >> 63)
			v -= w2
			pair += int(^uint64(v) >> 63)

			// Two net updates per pair at a fixed stride; a result of
			// zero is a potential DoneWhenZero trigger and marks the
			// lane for the decide pass.
			d := pair * 2
			e0 := deltaPk[d]
			e1 := deltaPk[d+1]
			ia := base + int(e0>>32)
			ib := base + int(e1>>32)
			na := counts[ia] + uint32(e0)
			counts[ia] = na
			nb := counts[ib] + uint32(e1)
			counts[ib] = nb
			var dz uint64
			if na == 0 {
				dz = dirtyBit
			}
			if nb == 0 {
				dz = dirtyBit
			}

			rec[rb+recStep] = uint64(step) | dz
			rec[rb], rec[rb+1], rec[rb+2], rec[rb+3] = s0, s1, s2, s3
			li++
		}
	}
	return nil
}
