package protocols

// NewTernarySignaling returns the 3-state binary consensus protocol of
// Perron, Vasudevan, and Vojnović (INFOCOM 2009). Like the Angluin et al.
// approximate-majority protocol it uses two decided opinions and one
// undecided state and the same cancellation idea the paper's LV protocols
// rely on, but the update direction is reversed: the *initiator* pulls the
// responder's state and updates itself, while the responder never changes.
//
//	(0, 1) → (e, 1)    (1, 0) → (e, 0)
//	(e, 0) → (0, 0)    (e, 1) → (1, 1)
//
// Perron et al. show that with a linear initial gap the protocol fails only
// with exponentially small probability.
func NewTernarySignaling() *PopulationProtocol {
	const (
		ts0 = iota
		ts1
		tsE
	)
	return &PopulationProtocol{
		ProtocolName: "ternary signaling (Perron et al.)",
		NumStates:    3,
		Rule: func(initiator, responder int) (int, int) {
			switch {
			case initiator == ts0 && responder == ts1:
				return tsE, responder
			case initiator == ts1 && responder == ts0:
				return tsE, responder
			case initiator == tsE && responder == ts0:
				return ts0, responder
			case initiator == tsE && responder == ts1:
				return ts1, responder
			default:
				return initiator, responder
			}
		},
		MajorityState: ts0,
		MinorityState: ts1,
		Done: func(counts []int) (bool, int) {
			switch {
			case counts[ts1] == 0 && counts[tsE] == 0:
				return true, 0
			case counts[ts0] == 0 && counts[tsE] == 0:
				return true, 1
			case counts[ts0] == 0 && counts[ts1] == 0:
				// All agents undecided: no decided opinion can
				// ever reappear.
				return true, -1
			default:
				return false, -1
			}
		},
		DoneWhenZero: []DoneRule{
			{Zero: []int{ts1, tsE}, Winner: 0},
			{Zero: []int{ts0, tsE}, Winner: 1},
			{Zero: []int{ts0, ts1}, Winner: -1},
		},
	}
}
