package protocols

import (
	"strings"
	"testing"

	"lvmajority/internal/rng"
)

func TestCRNVariantString(t *testing.T) {
	cases := map[CRNVariant]string{
		SingleB:       "single-B",
		DoubleB:       "double-B",
		HeavyB:        "heavy-B",
		TriMajority:   "tri-majority",
		CRNVariant(9): "CRNVariant(9)",
	}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(v), got, want)
		}
	}
}

func TestCondonNetworks(t *testing.T) {
	cases := []struct {
		variant   CRNVariant
		species   int
		reactions int
	}{
		{SingleB, 3, 4},
		{DoubleB, 3, 3},
		{HeavyB, 3, 3},
		{TriMajority, 2, 2},
	}
	for _, tc := range cases {
		net, err := CondonProtocol{Variant: tc.variant}.network()
		if err != nil {
			t.Fatalf("%v: %v", tc.variant, err)
		}
		if net.NumSpecies() != tc.species {
			t.Errorf("%v: %d species, want %d", tc.variant, net.NumSpecies(), tc.species)
		}
		if net.NumReactions() != tc.reactions {
			t.Errorf("%v: %d reactions, want %d", tc.variant, net.NumReactions(), tc.reactions)
		}
	}
	if _, err := (CondonProtocol{Variant: CRNVariant(0)}).network(); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestCondonMoleculeAccounting(t *testing.T) {
	// single-B preserves molecule count; double-B preserves it; heavy-B
	// increases it by one per cancellation; tri-majority preserves it.
	net, err := CondonProtocol{Variant: HeavyB}.network()
	if err != nil {
		t.Fatal(err)
	}
	state := []int{3, 2, 0}
	if err := net.Apply(0, state); err != nil { // X+Y -> B+B+B
		t.Fatal(err)
	}
	if state[0] != 2 || state[1] != 1 || state[2] != 3 {
		t.Errorf("heavy-B cancellation gave %v, want [2 1 3]", state)
	}
}

func TestCondonTrialValidation(t *testing.T) {
	p := CondonProtocol{Variant: SingleB}
	if _, err := p.Trial(1, 0, rng.New(1)); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := p.Trial(10, 3, rng.New(1)); err == nil {
		t.Error("parity mismatch accepted")
	}
}

func TestCondonLargeGapWins(t *testing.T) {
	src := rng.New(23)
	for _, variant := range []CRNVariant{SingleB, DoubleB, HeavyB, TriMajority} {
		p := CondonProtocol{Variant: variant}
		wins := 0
		const trials = 100
		for i := 0; i < trials; i++ {
			won, err := p.Trial(60, 40, src)
			if err != nil {
				t.Fatalf("%v: %v", variant, err)
			}
			if won {
				wins++
			}
		}
		if wins < trials*9/10 {
			t.Errorf("%v with huge gap won only %d/%d", variant, wins, trials)
		}
	}
}

func TestCondonNames(t *testing.T) {
	p := CondonProtocol{Variant: DoubleB}
	if !strings.Contains(p.Name(), "double-B") {
		t.Errorf("name %q does not mention the variant", p.Name())
	}
}

func TestTriMajorityNeverCreatesBlanks(t *testing.T) {
	// Tri-majority preserves total count and uses only two species.
	p := CondonProtocol{Variant: TriMajority}
	net, err := p.network()
	if err != nil {
		t.Fatal(err)
	}
	state := []int{5, 3}
	if err := net.Apply(0, state); err != nil {
		t.Fatal(err)
	}
	if state[0]+state[1] != 8 {
		t.Errorf("tri-majority changed total count: %v", state)
	}
	if state[0] != 6 || state[1] != 2 {
		t.Errorf("X+X+Y->3X gave %v, want [6 2]", state)
	}
}
