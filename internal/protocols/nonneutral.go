package protocols

import (
	"fmt"
	"sync"

	"lvmajority/internal/crn"
	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
)

// GeneralLVParams generalizes the paper's Lotka–Volterra models to fully
// species-specific rates: besides the per-species competition rates α_i,
// γ_i the paper already allows, each species gets its own birth rate β_i
// and death rate δ_i. The paper's neutrality assumption corresponds to
// Beta[0] = Beta[1] and Delta[0] = Delta[1]; breaking it models a fitness
// difference between the two strains, the ablation measured by the
// E-FITNESS experiment.
type GeneralLVParams struct {
	// Beta holds the per-species birth rates β₀, β₁.
	Beta [2]float64
	// Delta holds the per-species death rates δ₀, δ₁.
	Delta [2]float64
	// Alpha holds the interspecific competition rates α₀, α₁.
	Alpha [2]float64
	// Gamma holds the intraspecific competition rates γ₀, γ₁.
	Gamma [2]float64
	// Competition selects the interference model.
	Competition lv.Competition
}

// FromNeutral lifts the paper's (species-independent β, δ) parameters into
// the generalized form.
func FromNeutral(p lv.Params) GeneralLVParams {
	return GeneralLVParams{
		Beta:        [2]float64{p.Beta, p.Beta},
		Delta:       [2]float64{p.Delta, p.Delta},
		Alpha:       p.Alpha,
		Gamma:       p.Gamma,
		Competition: p.Competition,
	}
}

// Validate reports whether the parameters are well formed.
func (p GeneralLVParams) Validate() error {
	for i := 0; i < 2; i++ {
		for _, r := range []struct {
			name string
			v    float64
		}{
			{"beta", p.Beta[i]}, {"delta", p.Delta[i]},
			{"alpha", p.Alpha[i]}, {"gamma", p.Gamma[i]},
		} {
			if r.v < 0 || r.v != r.v || r.v > 1e300 {
				return fmt.Errorf("protocols: bad rate %s%d=%v", r.name, i, r.v)
			}
		}
	}
	if p.Competition != lv.SelfDestructive && p.Competition != lv.NonSelfDestructive {
		return fmt.Errorf("protocols: unknown competition model %d", p.Competition)
	}
	return nil
}

// Network builds the chemical reaction network of the generalized model.
func (p GeneralLVParams) Network() (*crn.Network, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	net, err := crn.NewNetwork("X0", "X1")
	if err != nil {
		return nil, err
	}
	for i := 0; i < 2; i++ {
		self := crn.Species(i)
		other := crn.Species(1 - i)
		var interProducts, intraProducts []crn.Species
		if p.Competition == lv.NonSelfDestructive {
			interProducts = []crn.Species{self}
			intraProducts = []crn.Species{self}
		}
		reactions := []crn.Reaction{
			{Name: fmt.Sprintf("birth%d", i), Reactants: []crn.Species{self}, Products: []crn.Species{self, self}, Rate: p.Beta[i]},
			{Name: fmt.Sprintf("death%d", i), Reactants: []crn.Species{self}, Products: nil, Rate: p.Delta[i]},
			{Name: fmt.Sprintf("inter%d", i), Reactants: []crn.Species{self, other}, Products: interProducts, Rate: p.Alpha[i]},
			{Name: fmt.Sprintf("intra%d", i), Reactants: []crn.Species{self, self}, Products: intraProducts, Rate: p.Gamma[i]},
		}
		for _, r := range reactions {
			if err := net.AddReaction(r); err != nil {
				return nil, err
			}
		}
	}
	return net, nil
}

// GeneralLVProtocol runs the generalized (possibly non-neutral) two-species
// LV chain on the internal/crn engine and adapts it to the
// consensus.Protocol interface. For neutral parameters it agrees with
// consensus.LVProtocol (which runs on the specialized internal/lv sampler)
// — a cross-validation exercised by the test suite.
type GeneralLVProtocol struct {
	// Params are the generalized rates.
	Params GeneralLVParams
	// MaxSteps bounds each trial; zero uses lv.DefaultMaxSteps.
	MaxSteps int

	// netOnce caches the immutable network (and its compiled dependency
	// graph) across trials.
	netOnce sync.Once
	net     *crn.Network
	netErr  error
}

// Name implements consensus.Protocol.
func (p *GeneralLVProtocol) Name() string {
	return fmt.Sprintf("general LV (%s, beta=%v delta=%v)", p.Params.Competition, p.Params.Beta, p.Params.Delta)
}

// Trial implements consensus.Protocol.
func (p *GeneralLVProtocol) Trial(n, delta int, src *rng.Source) (bool, error) {
	if n < 2 {
		return false, fmt.Errorf("protocols: population %d too small", n)
	}
	if delta < 0 || delta > n-2 || (n-delta)%2 != 0 {
		return false, fmt.Errorf("protocols: infeasible gap %d for n=%d", delta, n)
	}
	p.netOnce.Do(func() { p.net, p.netErr = p.Params.Network() })
	net, err := p.net, p.netErr
	if err != nil {
		return false, err
	}
	b := (n - delta) / 2
	sim, err := crn.NewSimulator(net, []int{n - b, b}, src)
	if err != nil {
		return false, err
	}
	maxSteps := p.MaxSteps
	if maxSteps <= 0 {
		maxSteps = lv.DefaultMaxSteps
	}
	stop := func(state []int) bool { return state[0] == 0 || state[1] == 0 }
	res, err := sim.Run(stop, maxSteps, nil)
	if err != nil {
		return false, err
	}
	state := sim.State()
	if !res.Stopped && !res.Absorbed {
		return false, fmt.Errorf("protocols: general LV trial exhausted %d steps", maxSteps)
	}
	return state[0] > 0 && state[1] == 0, nil
}
