package protocols

import (
	"testing"

	"lvmajority/internal/consensus"
	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

func neutralGeneral(comp lv.Competition) GeneralLVParams {
	return FromNeutral(lv.Neutral(1, 1, 1, 0, comp))
}

func TestGeneralLVParamsValidate(t *testing.T) {
	if err := neutralGeneral(lv.SelfDestructive).Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := neutralGeneral(lv.SelfDestructive)
	bad.Beta[1] = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative beta accepted")
	}
	if err := (GeneralLVParams{}).Validate(); err == nil {
		t.Error("zero competition model accepted")
	}
}

func TestGeneralLVNetworkShape(t *testing.T) {
	for _, comp := range []lv.Competition{lv.SelfDestructive, lv.NonSelfDestructive} {
		net, err := neutralGeneral(comp).Network()
		if err != nil {
			t.Fatal(err)
		}
		if net.NumSpecies() != 2 || net.NumReactions() != 8 {
			t.Fatalf("%s: %d species, %d reactions", comp, net.NumSpecies(), net.NumReactions())
		}
	}
}

// TestGeneralLVPropensitiesMatchSpecializedEngine cross-checks the CRN
// formulation against lv.PropensitiesFor: in any state, the total
// propensity of the generalized network with neutral rates must equal the
// specialized sampler's total.
func TestGeneralLVPropensitiesMatchSpecializedEngine(t *testing.T) {
	params := lv.Neutral(1.5, 0.5, 2, 0.25, lv.NonSelfDestructive)
	net, err := FromNeutral(params).Network()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []lv.State{{X0: 10, X1: 7}, {X0: 1, X1: 1}, {X0: 0, X1: 5}, {X0: 3, X1: 0}} {
		_, wantTotal := lv.PropensitiesFor(params, s)
		gotTotal := net.TotalPropensity([]int{s.X0, s.X1})
		if diff := gotTotal - wantTotal; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("state %+v: total propensity %v vs lv engine %v", s, gotTotal, wantTotal)
		}
	}
}

// TestGeneralLVAgreesWithSpecializedEngine is the engine cross-validation:
// for neutral rates, the win-probability estimates from the CRN-backed
// generalized protocol and from the specialized internal/lv sampler must
// agree within their confidence intervals.
func TestGeneralLVAgreesWithSpecializedEngine(t *testing.T) {
	const (
		n     = 256
		delta = 16
	)
	params := lv.Neutral(1, 1, 1, 0, lv.NonSelfDestructive)
	general := &GeneralLVProtocol{Params: FromNeutral(params)}
	specialized := &consensus.LVProtocol{Params: params}
	opts := consensus.EstimateOptions{Trials: 2000, Seed: 11}
	got, err := consensus.EstimateWinProbability(general, n, delta, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := consensus.EstimateWinProbability(specialized, n, delta, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Lo > want.Hi || want.Lo > got.Hi {
		t.Errorf("engines disagree: general [%.3f, %.3f] vs specialized [%.3f, %.3f]",
			got.Lo, got.Hi, want.Lo, want.Hi)
	}
}

// TestGeneralLVFitnessShiftsOutcome checks the non-neutral behaviour the
// generalization exists for: a birth-rate advantage for the minority
// species must depress the majority's win probability, and an advantage
// for the majority must raise it.
func TestGeneralLVFitnessShiftsOutcome(t *testing.T) {
	const (
		n      = 256
		delta  = 16
		trials = 1200
	)
	estimate := func(beta0, beta1 float64) stats.BernoulliEstimate {
		t.Helper()
		p := neutralGeneral(lv.NonSelfDestructive)
		p.Beta[0] = beta0
		p.Beta[1] = beta1
		est, err := consensus.EstimateWinProbability(
			&GeneralLVProtocol{Params: p}, n, delta,
			consensus.EstimateOptions{Trials: trials, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	neutral := estimate(1, 1)
	majorityFit := estimate(1.3, 1)
	minorityFit := estimate(1, 1.3)
	if majorityFit.P() <= neutral.P() {
		t.Errorf("majority fitness advantage did not help: %.3f vs neutral %.3f",
			majorityFit.P(), neutral.P())
	}
	if minorityFit.P() >= neutral.P() {
		t.Errorf("minority fitness advantage did not hurt: %.3f vs neutral %.3f",
			minorityFit.P(), neutral.P())
	}
}

func TestGeneralLVProtocolValidation(t *testing.T) {
	p := &GeneralLVProtocol{Params: neutralGeneral(lv.SelfDestructive)}
	src := rng.New(1)
	if _, err := p.Trial(1, 0, src); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := p.Trial(100, 3, src); err == nil {
		t.Error("parity violation accepted")
	}
	bad := &GeneralLVProtocol{}
	if _, err := bad.Trial(100, 2, src); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestGeneralLVDeterministic(t *testing.T) {
	p := &GeneralLVProtocol{Params: neutralGeneral(lv.SelfDestructive)}
	for seed := uint64(0); seed < 5; seed++ {
		r1, err1 := p.Trial(128, 8, rng.New(seed))
		r2, err2 := p.Trial(128, 8, rng.New(seed))
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if r1 != r2 {
			t.Fatalf("seed %d: non-deterministic trial", seed)
		}
	}
}
