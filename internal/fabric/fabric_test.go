package fabric

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lvmajority/internal/consensus"
	"lvmajority/internal/faultpoint"
	"lvmajority/internal/progress"
	"lvmajority/internal/scenario"
	"lvmajority/internal/stats"
	"lvmajority/internal/sweep"
)

// testModel is a fast protocol for fleet tests; the voter dynamics absorb
// quickly at small n.
func testModel(t *testing.T) (*scenario.Model, consensus.Protocol) {
	t.Helper()
	m := &scenario.Model{Kind: scenario.ModelProtocol, Protocol: &scenario.ProtocolModel{Name: "voter"}}
	p, err := m.BuildProtocol()
	if err != nil {
		t.Fatal(err)
	}
	return m, p
}

// startWorker serves one fabric worker over httptest and returns its
// registration. The worker is not running its heartbeat loop — tests
// register it with the coordinator directly, which keeps lease timing under
// test control.
func startWorker(t *testing.T, id string) (WorkerInfo, *httptest.Server) {
	t.Helper()
	mux := http.NewServeMux()
	w, err := NewWorker(WorkerConfig{ID: id, Coordinator: "http://unused.invalid", AdvertiseURL: "http://unused.invalid"})
	if err != nil {
		t.Fatal(err)
	}
	w.Routes(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return WorkerInfo{ID: id, URL: srv.URL, Cores: 2}, srv
}

func newTestCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	if cfg.ShardTrials == 0 {
		cfg.ShardTrials = 64
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// estimateLocal is the reference: the exact estimator a non-fleet run uses.
func estimateLocal(t *testing.T, p consensus.Protocol, n, delta int, earlyStop bool, target float64, opts consensus.EstimateOptions) stats.BernoulliEstimate {
	t.Helper()
	var est stats.BernoulliEstimate
	var err error
	if earlyStop {
		est, err = consensus.EstimateWithEarlyStop(p, n, delta, target, opts)
	} else {
		est, err = consensus.EstimateWinProbability(p, n, delta, opts)
	}
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// estimateFleet runs the same estimate through the coordinator's probe
// factory.
func estimateFleet(t *testing.T, c *Coordinator, m *scenario.Model, p consensus.Protocol, n, delta int, earlyStop bool, target float64, opts consensus.EstimateOptions) stats.BernoulliEstimate {
	t.Helper()
	est, err := c.Probes()(m, p, n, target, earlyStop)(delta, opts)
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// TestFleetMatchesLocal is the determinism anchor: the fleet estimate is
// byte-identical to the local estimator for 0, 1, and 3 workers, with and
// without early stopping, and under an adversarial shard assignment.
func TestFleetMatchesLocal(t *testing.T) {
	m, p := testModel(t)
	const (
		n, delta = 48, 6
		target   = 0.8
	)
	opts := consensus.EstimateOptions{Trials: 600, Workers: 2, Seed: 0xfab, Interrupt: func() error { return nil }}

	for _, earlyStop := range []bool{false, true} {
		want := estimateLocal(t, p, n, delta, earlyStop, target, opts)
		for _, workers := range []int{0, 1, 3} {
			for _, adversarial := range []bool{false, true} {
				if workers == 0 && adversarial {
					continue
				}
				name := fmt.Sprintf("earlystop=%v/workers=%d/adversarial=%v", earlyStop, workers, adversarial)
				t.Run(name, func(t *testing.T) {
					cfg := Config{}
					if adversarial {
						// Pin every shard to the lexicographically last live
						// worker, starving the rest — assignment must not
						// matter.
						cfg.Assign = func(ids []string, lo, hi int) string { return ids[len(ids)-1] }
					}
					c := newTestCoordinator(t, cfg)
					for i := 0; i < workers; i++ {
						info, _ := startWorker(t, fmt.Sprintf("w%d", i))
						if _, err := c.Register(info); err != nil {
							t.Fatal(err)
						}
					}
					got := estimateFleet(t, c, m, p, n, delta, earlyStop, target, opts)
					if got != want {
						t.Fatalf("fleet estimate %+v != local %+v", got, want)
					}
					st := c.FleetStats()
					if workers > 0 && st.ShardsDispatched == 0 {
						t.Fatalf("no shards dispatched with %d workers: %+v", workers, st)
					}
					if workers == 0 && st.ShardsLocal == 0 {
						t.Fatalf("empty fleet did not run locally: %+v", st)
					}
				})
			}
		}
	}
}

// TestFleetSurvivesWorkerKill kills one worker mid-run: its shards are
// reassigned and the estimate still matches the local run byte-for-byte.
func TestFleetSurvivesWorkerKill(t *testing.T) {
	m, p := testModel(t)
	const (
		n, delta = 48, 6
		target   = 0.8
	)
	opts := consensus.EstimateOptions{Trials: 800, Workers: 2, Seed: 7, Interrupt: func() error { return nil }}
	want := estimateLocal(t, p, n, delta, false, target, opts)

	c := newTestCoordinator(t, Config{ShardTrials: 50})
	infoA, srvA := startWorker(t, "a")
	infoB, _ := startWorker(t, "b")
	for _, info := range []WorkerInfo{infoA, infoB} {
		if _, err := c.Register(info); err != nil {
			t.Fatal(err)
		}
	}
	// Kill worker a after its first served shard: subsequent dispatches to
	// it fail at the transport, forcing eviction and reassignment.
	var served atomic.Int64
	inner := srvA.Config.Handler
	srvA.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if served.Add(1) == 2 {
			go srvA.CloseClientConnections()
		}
		if served.Load() >= 2 {
			w.WriteHeader(http.StatusBadGateway) // torn mid-fleet: worker is dying
			return
		}
		inner.ServeHTTP(w, r)
	})

	got := estimateFleet(t, c, m, p, n, delta, false, target, opts)
	if got != want {
		t.Fatalf("fleet estimate after worker kill %+v != local %+v", got, want)
	}
	st := c.FleetStats()
	if st.Reassignments == 0 {
		t.Fatalf("worker kill caused no reassignment: %+v", st)
	}
	if st.WorkersLive != 1 {
		t.Fatalf("dead worker not evicted: %+v", st)
	}
}

// TestFleetFaultInjection drives the shard-dispatch and shard-result fault
// points: injected failures evict and reassign, and the estimate is still
// byte-identical to the local run.
func TestFleetFaultInjection(t *testing.T) {
	m, p := testModel(t)
	const (
		n, delta = 48, 4
		target   = 0.8
	)
	opts := consensus.EstimateOptions{Trials: 400, Workers: 2, Seed: 11, Interrupt: func() error { return nil }}
	want := estimateLocal(t, p, n, delta, false, target, opts)

	for _, site := range []faultpoint.Site{faultpoint.ShardDispatch, faultpoint.ShardResult} {
		t.Run(string(site), func(t *testing.T) {
			c := newTestCoordinator(t, Config{ShardTrials: 64})
			for _, id := range []string{"a", "b"} {
				info, _ := startWorker(t, id)
				if _, err := c.Register(info); err != nil {
					t.Fatal(err)
				}
			}
			faultpoint.Arm(faultpoint.NewPlan(faultpoint.Rule{Site: site, After: 1, Times: 1, Msg: "injected " + string(site) + " fault"}))
			defer faultpoint.Disarm()

			got := estimateFleet(t, c, m, p, n, delta, false, target, opts)
			if got != want {
				t.Fatalf("estimate under %s fault %+v != local %+v", site, got, want)
			}
			if st := c.FleetStats(); st.Reassignments == 0 {
				t.Fatalf("injected %s fault caused no reassignment: %+v", site, st)
			}
		})
	}
}

// TestLeaseExpiry advances the coordinator's clock past the lease TTL: the
// silent worker is evicted lazily and the window falls back to local
// execution, still byte-identical.
func TestLeaseExpiry(t *testing.T) {
	m, p := testModel(t)
	opts := consensus.EstimateOptions{Trials: 300, Workers: 2, Seed: 3, Interrupt: func() error { return nil }}
	want := estimateLocal(t, p, 32, 4, false, 0.8, opts)

	c := newTestCoordinator(t, Config{LeaseTTL: time.Minute})
	info, _ := startWorker(t, "stale")
	if _, err := c.Register(info); err != nil {
		t.Fatal(err)
	}
	base := time.Now()
	c.now = func() time.Time { return base.Add(2 * time.Minute) }

	got := estimateFleet(t, c, m, p, 32, 4, false, 0.8, opts)
	if got != want {
		t.Fatalf("estimate after lease expiry %+v != local %+v", got, want)
	}
	st := c.FleetStats()
	if st.Evictions == 0 || st.WorkersLive != 0 {
		t.Fatalf("expired worker not evicted: %+v", st)
	}
	if st.ShardsLocal == 0 {
		t.Fatalf("no local fallback after fleet drained: %+v", st)
	}
}

// TestWorkerScopedProgress asserts the coordinator attributes trial progress
// to worker-scoped streams with strictly increasing Done counters.
func TestWorkerScopedProgress(t *testing.T) {
	m, p := testModel(t)
	c := newTestCoordinator(t, Config{ShardTrials: 64})
	info, _ := startWorker(t, "obs")
	if _, err := c.Register(info); err != nil {
		t.Fatal(err)
	}
	var mu struct {
		events []progress.Event
	}
	var guard = make(chan struct{}, 1)
	hook := func(e progress.Event) {
		guard <- struct{}{}
		mu.events = append(mu.events, e)
		<-guard
	}
	opts := consensus.EstimateOptions{Trials: 300, Workers: 2, Seed: 5, Interrupt: func() error { return nil }, Progress: hook}
	estimateFleet(t, c, m, p, 32, 4, false, 0.8, opts)

	lastDone := int64(0)
	scoped := 0
	for _, e := range mu.events {
		if e.Kind != progress.KindTrials || e.Scope != WorkerScope("obs") {
			continue
		}
		scoped++
		if e.Done <= lastDone {
			t.Fatalf("worker-scoped Done not strictly increasing: %d after %d", e.Done, lastDone)
		}
		if e.Total < e.Done {
			t.Fatalf("assigned %d below done %d", e.Total, e.Done)
		}
		lastDone = e.Done
	}
	if scoped == 0 {
		t.Fatal("no worker-scoped trial events observed")
	}
}

// TestWorkerJournal: a restarted coordinator re-adopts journaled workers
// that still answer healthz, drops dead ones, and quarantines torn entries.
func TestWorkerJournal(t *testing.T) {
	dir := t.TempDir()
	c1 := newTestCoordinator(t, Config{JournalDir: dir})
	live, _ := startWorker(t, "live")
	dead, deadSrv := startWorker(t, "dead")
	for _, info := range []WorkerInfo{live, dead} {
		if _, err := c1.Register(info); err != nil {
			t.Fatal(err)
		}
	}
	deadSrv.Close()
	// A torn entry from a crash mid-write must be quarantined, not fatal.
	torn := filepath.Join(dir, "worker-torn.json")
	if err := os.WriteFile(torn, []byte(`{"id": "torn", "url": "ht`), 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := newTestCoordinator(t, Config{JournalDir: dir})
	views := c2.Workers()
	if len(views) != 1 || views[0].ID != "live" {
		t.Fatalf("restarted coordinator adopted %+v, want only the live worker", views)
	}
	if _, err := os.Stat(torn + ".corrupt"); err != nil {
		t.Fatalf("torn journal entry not quarantined: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "worker-dead.json")); !os.IsNotExist(err) {
		t.Fatalf("dead worker's journal entry not removed: %v", err)
	}
}

// TestCacheEndpoints exercises the coordinator's probe-cache surface: ETag
// round trip, 304 revalidation, merge-by-key pushes, and interop with the
// sweep remote backend.
func TestCacheEndpoints(t *testing.T) {
	shared := sweep.NewCache()
	shared.Put(sweep.Key{Protocol: "voter", N: 32, Delta: 4, Seed: 1, Trials: 100}, stats.BernoulliEstimate{Successes: 60, Trials: 100, Lo: 0.5, Hi: 0.7})
	c := newTestCoordinator(t, Config{Cache: shared})
	mux := http.NewServeMux()
	c.Routes(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	cacheURL := srv.URL + "/fabric/v1/cache"

	// A remote-backed sweep cache warm-starts from the server.
	rc, err := sweep.OpenRemoteCache(cacheURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Len() != 1 {
		t.Fatalf("remote cache warm start adopted %d entries, want 1", rc.Len())
	}
	// Settling a new probe and checkpointing pushes it to the server.
	rc.Put(sweep.Key{Protocol: "voter", N: 64, Delta: 8, Seed: 1, Trials: 100}, stats.BernoulliEstimate{Successes: 80, Trials: 100, Lo: 0.7, Hi: 0.9})
	if err := rc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if shared.Len() != 2 {
		t.Fatalf("push merged to %d entries, want 2", shared.Len())
	}
	if err := rc.Degraded(); err != nil {
		t.Fatalf("remote cache degraded: %v", err)
	}

	// Conditional GET with the current validator answers 304.
	resp, err := http.Get(cacheURL)
	if err != nil {
		t.Fatal(err)
	}
	etag := resp.Header.Get("Etag")
	resp.Body.Close()
	if etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("cache GET returned no quoted ETag: %q", etag)
	}
	req, _ := http.NewRequest(http.MethodGet, cacheURL, nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation answered %s, want 304", resp.Status)
	}
	st := c.FleetStats()
	if st.CacheHits == 0 || st.CacheMisses == 0 || st.CacheMerges == 0 {
		t.Fatalf("cache counters not moving: %+v", st)
	}
}

// TestWorkerShardErrors pins the worker's error contract: undecodable
// bodies answer 400, failing trials answer 422, and the coordinator treats
// 422 as fatal rather than reassigning.
func TestWorkerShardErrors(t *testing.T) {
	info, srv := startWorker(t, "errs")
	resp, err := http.Post(srv.URL+"/fabric/v1/shards", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("torn shard body answered %s, want 400", resp.Status)
	}
	// An unknown protocol fails deterministically: 422.
	resp, err = http.Post(srv.URL+"/fabric/v1/shards", "application/json",
		strings.NewReader(`{"model": {"kind": "protocol", "protocol": {"name": "no-such"}}, "n": 8, "delta": 2, "lo": 0, "hi": 8}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown protocol answered %s, want 422", resp.Status)
	}

	// The coordinator surfaces the 422 instead of evicting the worker.
	c := newTestCoordinator(t, Config{})
	if _, err := c.Register(info); err != nil {
		t.Fatal(err)
	}
	badModel := &scenario.Model{Kind: scenario.ModelProtocol, Protocol: &scenario.ProtocolModel{Name: "no-such"}}
	_, _, derr := c.dispatch(info, ShardRequest{Model: badModel, N: 8, Delta: 2, Lo: 0, Hi: 8})
	if derr == nil || !strings.Contains(derr.Error(), "no-such") {
		t.Fatalf("dispatch of failing shard: %v", derr)
	}
	if st := c.FleetStats(); st.WorkersLive != 1 {
		t.Fatalf("422 evicted the worker: %+v", st)
	}
}
