package fabric

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"lvmajority/internal/faultpoint"
	"lvmajority/internal/ioretry"
)

// Worker-registration journal: one worker-<id>.json per registered worker,
// written on registration (and every heartbeat refresh of a changed body),
// removed on deregistration and eviction. On restart the coordinator replays
// the directory and re-adopts workers that still answer their healthz, so a
// coordinator crash does not orphan a live fleet until the next heartbeat
// round. Like the serve run journal, I/O is best-effort: a write failure is
// logged and the registration proceeds — journaling degrades, the fleet does
// not. Unreadable entries are quarantined (*.corrupt), never fatal.

// workerJournalRetry is the backoff policy for journal writes.
// Deterministic seed, like every other stream in the repository.
var workerJournalRetry = ioretry.Policy{Seed: 0xfab71c}

// workerJournal persists registrations under one directory. A nil
// *workerJournal is the disabled state: record and remove are no-ops.
type workerJournal struct {
	dir    string
	logger *log.Logger
}

func (j *workerJournal) path(id string) string {
	return filepath.Join(j.dir, "worker-"+id+".json")
}

// record persists (or refreshes) a worker's registration.
func (j *workerJournal) record(info WorkerInfo) {
	if j == nil {
		return
	}
	data, err := json.MarshalIndent(info, "", "  ")
	if err != nil {
		j.logger.Printf("fabric: journal: marshal worker %s: %v", info.ID, err)
		return
	}
	err = ioretry.Do(workerJournalRetry, func() error {
		if err := faultpoint.Hit(faultpoint.JournalWrite); err != nil {
			return err
		}
		return writeFileAtomic(j.path(info.ID), data)
	})
	if err != nil {
		j.logger.Printf("fabric: journal: record worker %s: %v (registration unaffected)", info.ID, err)
	}
}

// remove deletes a worker's entry.
func (j *workerJournal) remove(id string) {
	if j == nil {
		return
	}
	if err := os.Remove(j.path(id)); err != nil && !os.IsNotExist(err) {
		j.logger.Printf("fabric: journal: remove worker %s: %v", id, err)
	}
}

// openWorkerJournal creates (if needed) and replays the journal directory,
// returning the journal and the surviving entries sorted by ID. Unreadable
// or invalid entries are quarantined as *.corrupt and logged.
func openWorkerJournal(dir string, logger *log.Logger) (*workerJournal, []WorkerInfo, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("fabric: journal: %w", err)
	}
	j := &workerJournal{dir: dir, logger: logger}
	paths, err := filepath.Glob(filepath.Join(dir, "worker-*.json"))
	if err != nil {
		return nil, nil, fmt.Errorf("fabric: journal: %w", err)
	}
	var entries []WorkerInfo
	for _, path := range paths {
		data, err := os.ReadFile(path)
		var info WorkerInfo
		if err == nil {
			err = json.Unmarshal(data, &info)
		}
		if err == nil {
			err = info.validate()
		}
		if err == nil && j.path(info.ID) != path {
			err = fmt.Errorf("entry %s names worker %q", filepath.Base(path), info.ID)
		}
		if err != nil {
			os.Rename(path, path+".corrupt")
			logger.Printf("fabric: journal: quarantined unreadable entry %s: %v", filepath.Base(path), err)
			continue
		}
		entries = append(entries, info)
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].ID < entries[b].ID })
	return j, entries, nil
}

// writeFileAtomic writes data via a temp file in the same directory, fsyncs,
// and renames over the destination, so the recovery scan only ever sees
// complete entries.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
