// Package fabric is the distributed execution layer: a coordinator that
// shards Monte-Carlo trial windows across a fleet of registered workers and
// merges their window win-counts at exactly the batch boundaries the local
// block pool uses, so a fleet estimate is byte-identical to a single-process
// run for any worker count and any shard assignment.
//
// The determinism argument is the same one internal/mc makes for threads,
// lifted to processes: trial i draws randomness only from its own stream
// rng.NewStream(seed, i), so the win count of a window [lo, hi) is a
// location-independent integer — it does not matter which worker runs it,
// alongside what, or in which order the results come back, because integer
// sums are order-independent. The estimator control loop (fixed-size and
// early-stopping, mc.EstimateBernoulliCounted) runs on the coordinator, so
// batch boundaries, Wilson-interval inspections, and stopping decisions are
// the exact code paths a local run executes; only the window counting is
// farmed out.
//
// Topology and endpoints:
//
//	coordinator (cmd/serve -fleet)
//	  POST   /fabric/v1/workers       register or heartbeat (lease renewal)
//	  GET    /fabric/v1/workers       list registered workers
//	  DELETE /fabric/v1/workers/{id}  deregister
//	  GET    /fabric/v1/cache         probe-cache snapshot (ETag/If-None-Match)
//	  POST   /fabric/v1/cache         merge settled probes into the cache
//	worker (cmd/worker)
//	  POST   /fabric/v1/shards        run trials [lo, hi) of one window
//	  GET    /fabric/v1/healthz       liveness, identity, build version
//
// Failure handling is lease-based: workers heartbeat by re-registering, a
// worker whose lease lapses is evicted lazily, and a shard whose dispatch or
// result exchange fails is reassigned to another worker (or run locally when
// the fleet is empty) — the shard's result is a pure function of its window,
// so reassignment can never change the estimate, only its wall time.
package fabric

import (
	"fmt"
	"net/url"
	"regexp"

	"lvmajority/internal/scenario"
)

// WorkerInfo is a worker's registration: its identity, the base URL where
// the coordinator reaches it, and capability hints. POSTing it to
// /fabric/v1/workers registers the worker and renews its lease, so the same
// body serves as the heartbeat.
type WorkerInfo struct {
	// ID names the worker; it must match workerIDPattern so it can key a
	// journal file. Re-registering an ID replaces the previous registration.
	ID string `json:"id"`
	// URL is the base URL of the worker's HTTP listener, e.g.
	// "http://10.0.0.7:9090"; the coordinator POSTs shards to
	// URL + "/fabric/v1/shards".
	URL string `json:"url"`
	// Cores is the worker's advertised parallelism (scheduling hint only;
	// results never depend on it).
	Cores int `json:"cores,omitempty"`
	// Version is the worker's build identity, recorded for operators.
	Version string `json:"version,omitempty"`
}

// workerIDPattern constrains worker IDs to filename- and metrics-safe
// characters: the ID keys a journal file (worker-<id>.json) and a Prometheus
// label, so it must not smuggle path separators or quotes.
var workerIDPattern = regexp.MustCompile(`^[a-zA-Z0-9._-]{1,64}$`)

// validate checks a registration body.
func (w *WorkerInfo) validate() error {
	if !workerIDPattern.MatchString(w.ID) {
		return fmt.Errorf("fabric: worker id %q must match %s", w.ID, workerIDPattern)
	}
	u, err := url.Parse(w.URL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return fmt.Errorf("fabric: worker url %q is not an absolute URL", w.URL)
	}
	return nil
}

// ShardRequest asks a worker to run trials [Lo, Hi) of one estimation
// window. The model travels with the shard so the worker builds exactly the
// protocol — including any kernel override, which changes how trial streams
// are consumed — that the coordinator's local run would build; Seed is the
// already-derived per-gap seed, so trial rep draws only from
// rng.NewStream(Seed, rep) wherever it executes.
type ShardRequest struct {
	Model *scenario.Model `json:"model"`
	N     int             `json:"n"`
	Delta int             `json:"delta"`
	Seed  uint64          `json:"seed"`
	Lo    int             `json:"lo"`
	Hi    int             `json:"hi"`
}

// validate checks a shard request before execution.
func (r *ShardRequest) validate() error {
	if r.Model == nil {
		return fmt.Errorf("fabric: shard without a model")
	}
	if r.Hi < r.Lo || r.Lo < 0 {
		return fmt.Errorf("fabric: bad trial window [%d, %d)", r.Lo, r.Hi)
	}
	return nil
}

// ShardResult is a worker's answer: the number of successes over exactly
// Trials = Hi − Lo trials. The coordinator cross-checks Trials against the
// window it dispatched, so a torn or misrouted response is rejected and the
// shard reassigned rather than miscounted.
type ShardResult struct {
	Wins   int `json:"wins"`
	Trials int `json:"trials"`
}

// registerResponse is the coordinator's answer to a registration: the lease
// TTL tells the worker how often to heartbeat.
type registerResponse struct {
	ID            string  `json:"id"`
	LeaseSeconds  float64 `json:"lease_seconds"`
	Workers       int     `json:"workers"`
	Readopted     bool    `json:"readopted,omitempty"`
	CoordVersion  string  `json:"coordinator_version,omitempty"`
}
