package fabric

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"lvmajority/internal/sweep"
)

// The coordinator's HTTP surface. Routes mounts it on a mux the serving
// process owns (cmd/serve -fleet), so fleet endpoints share the listener,
// logging, and shutdown of the run API.

// Routes mounts the coordinator's endpoints on mux.
func (c *Coordinator) Routes(mux *http.ServeMux) {
	mux.HandleFunc("POST /fabric/v1/workers", c.handleRegister)
	mux.HandleFunc("GET /fabric/v1/workers", c.handleWorkers)
	mux.HandleFunc("DELETE /fabric/v1/workers/{id}", c.handleDeregister)
	mux.HandleFunc("GET /fabric/v1/cache", c.handleCacheGet)
	mux.HandleFunc("POST /fabric/v1/cache", c.handleCachePush)
}

// fabricError is the uniform JSON error envelope, matching the run API's.
func fabricError(w http.ResponseWriter, code int, format string, args ...any) {
	fabricJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func fabricJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleRegister registers a worker or renews its lease; the same POST is
// the heartbeat.
func (c *Coordinator) handleRegister(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, 1<<20))
	if err != nil {
		fabricError(w, http.StatusRequestEntityTooLarge, "reading body: %v", err)
		return
	}
	var info WorkerInfo
	if err := json.Unmarshal(body, &info); err != nil {
		fabricError(w, http.StatusBadRequest, "parsing registration: %v", err)
		return
	}
	if _, err := c.Register(info); err != nil {
		fabricError(w, http.StatusBadRequest, "%v", err)
		return
	}
	c.mu.Lock()
	count := len(c.workers)
	c.mu.Unlock()
	fabricJSON(w, http.StatusOK, registerResponse{
		ID:           info.ID,
		LeaseSeconds: c.leaseTTL.Seconds(),
		Workers:      count,
	})
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	fabricJSON(w, http.StatusOK, map[string]any{"workers": c.Workers()})
}

func (c *Coordinator) handleDeregister(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	c.Deregister(id)
	fabricJSON(w, http.StatusOK, map[string]string{"id": id, "status": "deregistered"})
}

// handleCacheGet serves the probe cache's canonical document,
// content-addressed on the entries checksum: the ETag is the checksum, an
// If-None-Match hit answers 304 with no body, and the steady state of a
// polling fleet costs nothing but the header exchange.
func (c *Coordinator) handleCacheGet(w http.ResponseWriter, req *http.Request) {
	var entries []sweep.Entry
	if c.cache != nil {
		entries = c.cache.Entries()
	}
	data, sum, err := sweep.EncodeEntries(entries)
	if err != nil {
		fabricError(w, http.StatusInternalServerError, "encoding cache: %v", err)
		return
	}
	etag := `"` + sum + `"`
	w.Header().Set("Etag", etag)
	if req.Header.Get("If-None-Match") == etag {
		c.mu.Lock()
		c.cacheHits++
		c.mu.Unlock()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	c.mu.Lock()
	c.cacheMisses++
	c.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// handleCachePush merges a pushed cache document into the coordinator's
// cache. Merging is by key with first-write-wins, so a retried or duplicated
// push converges; the response reports how many entries were new.
func (c *Coordinator) handleCachePush(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, c.maxBody))
	if err != nil {
		fabricError(w, http.StatusRequestEntityTooLarge, "reading body: %v", err)
		return
	}
	entries, _, err := sweep.DecodeEntries(body)
	if err != nil {
		fabricError(w, http.StatusBadRequest, "parsing cache document: %v", err)
		return
	}
	merged := 0
	if c.cache != nil {
		merged = c.cache.MergeEntries(entries)
	}
	c.mu.Lock()
	c.cacheMerges += int64(merged)
	c.mu.Unlock()
	fabricJSON(w, http.StatusOK, map[string]int{"received": len(entries), "merged": merged})
}
