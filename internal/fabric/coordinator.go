package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"lvmajority/internal/consensus"
	"lvmajority/internal/faultpoint"
	"lvmajority/internal/mc"
	"lvmajority/internal/progress"
	"lvmajority/internal/scenario"
	"lvmajority/internal/stats"
	"lvmajority/internal/sweep"
)

// Config configures a Coordinator. The zero value is usable: defaults are
// resolved by New.
type Config struct {
	// ShardTrials is the largest trial window dispatched as one shard
	// (default 512). Smaller shards spread better and lose less on a worker
	// failure; larger shards amortize HTTP round trips. It can never change
	// results — only the partition of [lo, hi) into order-independent sums.
	ShardTrials int
	// LeaseTTL is how long a registration stays live without a heartbeat
	// (default 15s). Workers heartbeat at a fraction of it.
	LeaseTTL time.Duration
	// Cache, when non-nil, is the probe cache served at /fabric/v1/cache —
	// typically the serving process's shared cache, so fleet members and
	// local runs settle probes into one pool. Nil disables the cache
	// endpoints' backing store (they answer with an empty set).
	Cache *sweep.Cache
	// JournalDir, when non-empty, persists worker registrations
	// (worker-<id>.json) so a restarted coordinator re-adopts workers that
	// are still alive instead of waiting for their next heartbeat.
	JournalDir string
	// Assign overrides worker selection, for tests that need adversarial
	// shard placement: it receives the sorted IDs of the live workers and
	// the shard window, and returns the chosen ID (which must be one of
	// ids). Nil selects the least-loaded worker. Any assignment yields
	// byte-identical estimates; only wall time differs.
	Assign func(ids []string, lo, hi int) string
	// Logger receives operational events; nil discards them.
	Logger *log.Logger
	// Client issues shard and health requests; nil gets a default with a
	// generous timeout (shards run real trial workloads).
	Client *http.Client
	// MaxBody bounds request bodies on the coordinator's endpoints
	// (default 64 MiB, matching the remote cache backend's bound).
	MaxBody int64
}

// workerState is one registered worker. Guarded by Coordinator.mu.
type workerState struct {
	info     WorkerInfo
	expires  time.Time
	inFlight int
}

// workerLoad accumulates per-scope progress counters. Entries survive
// eviction and re-registration so the progress stream's trial counters stay
// strictly increasing per scope, which is the monotonicity SSE documents.
type workerLoad struct {
	assigned, done, wins int64
}

// Coordinator shards trial windows across registered workers and serves the
// fleet's shared probe cache. It is safe for concurrent use.
type Coordinator struct {
	shardTrials int
	leaseTTL    time.Duration
	cache       *sweep.Cache
	assign      func(ids []string, lo, hi int) string
	logger      *log.Logger
	client      *http.Client
	maxBody     int64
	journal     *workerJournal
	// now is the lease clock; tests substitute it to force expiry.
	now func() time.Time

	mu      sync.Mutex
	workers map[string]*workerState
	loads   map[string]*workerLoad
	// Counters for Stats/metrics.
	shardsDispatched int64 // shards whose result a worker delivered
	shardsLocal      int64 // shards (or whole windows) run in-process
	reassignments    int64 // shards that had to move after a dispatch failure
	evictions        int64 // workers removed (lease expiry or failed exchange)
	cacheHits        int64 // /fabric/v1/cache GETs answered 304
	cacheMisses      int64 // /fabric/v1/cache GETs answered with a full body
	cacheMerges      int64 // entries adopted from /fabric/v1/cache POSTs
}

// New builds a Coordinator, replaying the worker journal when configured:
// journaled workers that still answer their healthz are re-adopted with a
// fresh lease, dead ones are dropped, and torn entries are quarantined.
func New(cfg Config) (*Coordinator, error) {
	if cfg.ShardTrials <= 0 {
		cfg.ShardTrials = 512
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 15 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Minute}
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 64 << 20
	}
	c := &Coordinator{
		shardTrials: cfg.ShardTrials,
		leaseTTL:    cfg.LeaseTTL,
		cache:       cfg.Cache,
		assign:      cfg.Assign,
		logger:      cfg.Logger,
		client:      cfg.Client,
		maxBody:     cfg.MaxBody,
		now:         time.Now,
		workers:     make(map[string]*workerState),
		loads:       make(map[string]*workerLoad),
	}
	if cfg.JournalDir != "" {
		j, entries, err := openWorkerJournal(cfg.JournalDir, cfg.Logger)
		if err != nil {
			return nil, err
		}
		c.journal = j
		c.readopt(entries)
	}
	return c, nil
}

// Register upserts a worker and renews its lease. It reports whether the ID
// was previously unknown (a fresh registration rather than a heartbeat).
func (c *Coordinator) Register(info WorkerInfo) (fresh bool, err error) {
	if err := info.validate(); err != nil {
		return false, err
	}
	c.mu.Lock()
	w, known := c.workers[info.ID]
	if !known {
		w = &workerState{}
		c.workers[info.ID] = w
	}
	w.info = info
	w.expires = c.now().Add(c.leaseTTL)
	c.mu.Unlock()
	c.journal.record(info)
	if !known {
		c.logger.Printf("fabric: worker %s registered (%s, %d cores)", info.ID, info.URL, info.Cores)
	}
	return !known, nil
}

// Deregister removes a worker. Unknown IDs are a no-op: deregistration is
// how workers say goodbye, and saying it twice must not fail a shutdown.
func (c *Coordinator) Deregister(id string) {
	c.mu.Lock()
	_, known := c.workers[id]
	delete(c.workers, id)
	c.mu.Unlock()
	if known {
		c.journal.remove(id)
		c.logger.Printf("fabric: worker %s deregistered", id)
	}
}

// readopt re-registers journaled workers that still answer their healthz.
// Probes run concurrently with a short per-probe timeout so a dead fleet
// cannot stall coordinator startup.
func (c *Coordinator) readopt(entries []WorkerInfo) {
	probe := &http.Client{Timeout: 3 * time.Second}
	var wg sync.WaitGroup
	for _, info := range entries {
		wg.Add(1)
		go func(info WorkerInfo) {
			defer wg.Done()
			resp, err := probe.Get(strings.TrimSuffix(info.URL, "/") + "/fabric/v1/healthz")
			if err == nil {
				io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
				resp.Body.Close()
			}
			if err != nil || resp.StatusCode != http.StatusOK {
				c.journal.remove(info.ID)
				c.logger.Printf("fabric: journaled worker %s (%s) is gone; dropped", info.ID, info.URL)
				return
			}
			if _, err := c.Register(info); err != nil {
				c.journal.remove(info.ID)
				c.logger.Printf("fabric: journaled worker %s invalid: %v", info.ID, err)
				return
			}
			c.logger.Printf("fabric: re-adopted journaled worker %s (%s)", info.ID, info.URL)
		}(info)
	}
	wg.Wait()
}

// lease picks a worker for a shard and charges the window against it, lazily
// evicting workers whose lease lapsed. It returns nil when no live worker
// remains — the caller then runs the shard in-process.
func (c *Coordinator) lease(lo, hi int) *WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	live := ids[:0]
	for _, id := range ids {
		if c.workers[id].expires.Before(now) {
			delete(c.workers, id)
			c.evictions++
			c.journal.remove(id)
			c.logger.Printf("fabric: worker %s lease expired; evicted", id)
			continue
		}
		live = append(live, id)
	}
	if len(live) == 0 {
		return nil
	}
	var chosen string
	if c.assign != nil {
		chosen = c.assign(append([]string(nil), live...), lo, hi)
		if _, ok := c.workers[chosen]; !ok {
			chosen = live[0]
		}
	} else {
		chosen = live[0]
		for _, id := range live[1:] {
			if c.workers[id].inFlight < c.workers[chosen].inFlight {
				chosen = id
			}
		}
	}
	w := c.workers[chosen]
	w.inFlight++
	c.loadFor(WorkerScope(chosen)).assigned += int64(hi - lo)
	info := w.info
	return &info
}

// loadFor returns the cumulative progress counters of one scope. Callers
// hold c.mu.
func (c *Coordinator) loadFor(scope string) *workerLoad {
	l := c.loads[scope]
	if l == nil {
		l = &workerLoad{}
		c.loads[scope] = l
	}
	return l
}

// release returns a leased shard slot, crediting the worker's counters when
// the shard completed.
func (c *Coordinator) release(id string, completed bool, trials, wins int) (done, assigned, winsCum int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w := c.workers[id]; w != nil && w.inFlight > 0 {
		w.inFlight--
	}
	l := c.loadFor(WorkerScope(id))
	if completed {
		l.done += int64(trials)
		l.wins += int64(wins)
		c.shardsDispatched++
	}
	return l.done, l.assigned, l.wins
}

// evict removes a worker after a failed shard exchange and counts the
// reassignment the caller is about to perform.
func (c *Coordinator) evict(id string, reason error) {
	c.mu.Lock()
	if w := c.workers[id]; w != nil {
		if w.inFlight > 0 {
			w.inFlight--
		}
		delete(c.workers, id)
		c.evictions++
	}
	c.reassignments++
	c.mu.Unlock()
	c.journal.remove(id)
	c.logger.Printf("fabric: worker %s evicted (%v); shard reassigned", id, reason)
}

// WorkerScope is the progress-event scope of one worker's trial stream;
// LocalScope marks shards the coordinator ran in-process. Both are non-empty
// so the scenario runner's task-scoping leaves them intact and SSE
// subscribers can attribute trials to fleet members.
func WorkerScope(id string) string { return "worker-" + id }

// LocalScope is the scope of fleet shards executed in-process (empty fleet
// or fallback after evictions).
const LocalScope = "fleet-local"

// Probes returns the probe-estimator factory that runs estimation windows on
// the fleet: the scenario runner's Runner.Probes seam. The estimator control
// loop — normalization, batch boundaries, Wilson inspections, early
// stopping — is mc.EstimateBernoulliCounted, the same code a local run
// executes, so estimates are byte-identical to local execution for any
// worker count and any shard assignment.
func (c *Coordinator) Probes() scenario.ProbeFactory {
	return func(model *scenario.Model, p consensus.Protocol, n int, target float64, earlyStop bool) consensus.ProbeEstimator {
		return func(delta int, opts consensus.EstimateOptions) (stats.BernoulliEstimate, error) {
			if p == nil {
				return stats.BernoulliEstimate{}, fmt.Errorf("consensus: nil protocol")
			}
			if _, _, err := consensus.SplitInitial(n, delta); err != nil {
				return stats.BernoulliEstimate{}, err
			}
			return mc.EstimateBernoulliCounted(mc.BernoulliOptions{
				Options: mc.Options{
					Replicates: opts.Trials,
					Workers:    opts.Workers,
					Seed:       opts.Seed,
					Interrupt:  opts.Interrupt,
					Progress:   opts.Progress,
				},
				Z:         opts.Z,
				EarlyStop: earlyStop,
				Target:    target,
			}, func(lo, hi int, mopts mc.Options) (int, error) {
				return c.countWindow(model, p, n, delta, lo, hi, mopts)
			})
		}
	}
}

// countWindow counts wins over trials [lo, hi), sharding across the live
// fleet. With no live workers the whole window runs in-process through
// consensus.CountWins — the identical kernel dispatch a local estimator
// uses — so the fleet layer degrades to exactly the local path.
func (c *Coordinator) countWindow(model *scenario.Model, p consensus.Protocol, n, delta, lo, hi int, opts mc.Options) (int, error) {
	if hi <= lo {
		return 0, nil
	}
	c.mu.Lock()
	liveWorkers := len(c.workers)
	c.mu.Unlock()
	if liveWorkers == 0 || model == nil {
		return c.countLocal(p, n, delta, lo, hi, opts)
	}

	type block struct{ lo, hi int }
	var blocks []block
	for b := lo; b < hi; b += c.shardTrials {
		e := b + c.shardTrials
		if e > hi {
			e = hi
		}
		blocks = append(blocks, block{b, e})
	}
	width := 2 * liveWorkers
	if width > len(blocks) {
		width = len(blocks)
	}
	if width > 64 {
		width = 64
	}

	var (
		wg       sync.WaitGroup
		sem      = make(chan struct{}, width)
		resMu    sync.Mutex
		wins     int
		firstErr error
	)
	for _, b := range blocks {
		if opts.Interrupt != nil {
			if err := opts.Interrupt(); err != nil {
				resMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				resMu.Unlock()
				break
			}
		}
		resMu.Lock()
		failed := firstErr != nil
		resMu.Unlock()
		if failed {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(b block) {
			defer wg.Done()
			defer func() { <-sem }()
			w, err := c.runBlock(model, p, n, delta, b.lo, b.hi, opts)
			resMu.Lock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			wins += w
			resMu.Unlock()
		}(b)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	return wins, nil
}

// countLocal runs a window in-process and emits its summary on the
// fleet-local scope.
func (c *Coordinator) countLocal(p consensus.Protocol, n, delta, lo, hi int, opts mc.Options) (int, error) {
	c.mu.Lock()
	c.shardsLocal++
	c.loadFor(LocalScope).assigned += int64(hi - lo)
	c.mu.Unlock()
	wins, err := consensus.CountWins(p, n, delta, lo, hi, consensus.EstimateOptions{
		Workers:   opts.Workers,
		Seed:      opts.Seed,
		Interrupt: opts.Interrupt,
	})
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	l := c.loadFor(LocalScope)
	l.done += int64(hi - lo)
	l.wins += int64(wins)
	done, assigned, winsCum := l.done, l.assigned, l.wins
	c.mu.Unlock()
	emitWorkerTrials(opts.Progress, LocalScope, done, assigned, winsCum)
	return wins, err
}

// runBlock executes one shard, reassigning on dispatch or result failure
// until a worker delivers it or the fleet drains (then it runs in-process).
// A worker that answers with a well-formed execution error (HTTP 422) stays
// registered and the error is returned — the trial itself failed, and it
// would fail identically anywhere.
func (c *Coordinator) runBlock(model *scenario.Model, p consensus.Protocol, n, delta, lo, hi int, opts mc.Options) (int, error) {
	for {
		w := c.lease(lo, hi)
		if w == nil {
			return c.countLocal(p, n, delta, lo, hi, opts)
		}
		res, fatal, err := c.dispatch(*w, ShardRequest{Model: model, N: n, Delta: delta, Seed: opts.Seed, Lo: lo, Hi: hi})
		if err != nil {
			if fatal {
				c.release(w.ID, false, 0, 0)
				return 0, err
			}
			c.evict(w.ID, err)
			continue
		}
		done, assigned, wins := c.release(w.ID, true, res.Trials, res.Wins)
		emitWorkerTrials(opts.Progress, WorkerScope(w.ID), done, assigned, wins)
		return res.Wins, nil
	}
}

// dispatch performs one shard exchange. fatal marks errors that reassignment
// cannot fix (the worker executed the trials and they failed); all other
// errors mean the worker is unreachable or spoke garbage, and the caller
// evicts it and reassigns the shard.
func (c *Coordinator) dispatch(w WorkerInfo, req ShardRequest) (res ShardResult, fatal bool, err error) {
	if err := faultpoint.Hit(faultpoint.ShardDispatch); err != nil {
		return ShardResult{}, false, err
	}
	body, err := json.Marshal(req)
	if err != nil {
		return ShardResult{}, true, err
	}
	resp, err := c.client.Post(strings.TrimSuffix(w.URL, "/")+"/fabric/v1/shards", "application/json", bytes.NewReader(body))
	if err != nil {
		return ShardResult{}, false, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return ShardResult{}, false, err
	}
	if resp.StatusCode == http.StatusUnprocessableEntity {
		// The worker ran the shard and the trials themselves failed; the
		// failure is deterministic in the spec, so surface it instead of
		// burning the fleet on reassignments.
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return ShardResult{}, true, fmt.Errorf("fabric: worker %s: %s", w.ID, e.Error)
		}
		return ShardResult{}, true, fmt.Errorf("fabric: worker %s rejected shard: %s", w.ID, resp.Status)
	}
	if resp.StatusCode != http.StatusOK {
		return ShardResult{}, false, fmt.Errorf("fabric: worker %s answered %s", w.ID, resp.Status)
	}
	if err := faultpoint.Hit(faultpoint.ShardResult); err != nil {
		return ShardResult{}, false, err
	}
	if err := json.Unmarshal(data, &res); err != nil {
		return ShardResult{}, false, fmt.Errorf("fabric: worker %s result: %w", w.ID, err)
	}
	if res.Trials != req.Hi-req.Lo {
		return ShardResult{}, false, fmt.Errorf("fabric: worker %s counted %d trials for window [%d, %d)", w.ID, res.Trials, req.Lo, req.Hi)
	}
	return res, false, nil
}

// emitWorkerTrials publishes one per-scope trial summary: cumulative
// completed trials against cumulative assigned, with cumulative wins. The
// counters only grow, so downstream throttles see strictly increasing Done
// per scope.
func emitWorkerTrials(h progress.Hook, scope string, done, assigned, wins int64) {
	if h == nil {
		return
	}
	h(progress.Event{
		Kind:  progress.KindTrials,
		Scope: scope,
		Done:  done,
		Total: assigned,
		Wins:  wins,
	})
}

// WorkerView is the list-endpoint and metrics view of one registered worker.
type WorkerView struct {
	ID       string  `json:"id"`
	URL      string  `json:"url"`
	Cores    int     `json:"cores,omitempty"`
	Version  string  `json:"version,omitempty"`
	State    string  `json:"state"` // "live" or "expired" (not yet evicted)
	InFlight int     `json:"in_flight"`
	Trials   int64   `json:"trials_done"`
	LeaseSec float64 `json:"lease_seconds_left"`
}

// Workers returns the registered workers sorted by ID. Expired-but-not-yet-
// evicted workers are reported with state "expired"; listing never evicts,
// so the view is read-only.
func (c *Coordinator) Workers() []WorkerView {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]WorkerView, 0, len(ids))
	for _, id := range ids {
		w := c.workers[id]
		state := "live"
		left := w.expires.Sub(now).Seconds()
		if left < 0 {
			state, left = "expired", 0
		}
		out = append(out, WorkerView{
			ID: id, URL: w.info.URL, Cores: w.info.Cores, Version: w.info.Version,
			State: state, InFlight: w.inFlight, Trials: c.loadFor(WorkerScope(id)).done,
			LeaseSec: left,
		})
	}
	return out
}

// Stats is a counters snapshot for /metrics.
type Stats struct {
	WorkersLive      int
	WorkersExpired   int
	InFlightShards   int
	ShardsDispatched int64
	ShardsLocal      int64
	Reassignments    int64
	Evictions        int64
	TrialsAssigned   int64
	TrialsDone       int64
	CacheHits        int64
	CacheMisses      int64
	CacheMerges      int64
}

// FleetStats snapshots the coordinator's counters.
func (c *Coordinator) FleetStats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	s := Stats{
		ShardsDispatched: c.shardsDispatched,
		ShardsLocal:      c.shardsLocal,
		Reassignments:    c.reassignments,
		Evictions:        c.evictions,
		CacheHits:        c.cacheHits,
		CacheMisses:      c.cacheMisses,
		CacheMerges:      c.cacheMerges,
	}
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		w := c.workers[id]
		if w.expires.Before(now) {
			s.WorkersExpired++
		} else {
			s.WorkersLive++
		}
		s.InFlightShards += w.inFlight
	}
	scopes := make([]string, 0, len(c.loads))
	for scope := range c.loads {
		scopes = append(scopes, scope)
	}
	sort.Strings(scopes)
	for _, scope := range scopes {
		s.TrialsAssigned += c.loads[scope].assigned
		s.TrialsDone += c.loads[scope].done
	}
	return s
}
