package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"runtime"
	"strings"
	"time"

	"lvmajority/internal/consensus"
	"lvmajority/internal/faultpoint"
	"lvmajority/internal/ioretry"
	"lvmajority/internal/scenario"
)

// workerRegisterRetry is the backoff policy for registration and heartbeat
// exchanges with the coordinator.
var workerRegisterRetry = ioretry.Policy{Seed: 0xfabbee}

// WorkerConfig configures a Worker.
type WorkerConfig struct {
	// ID names the worker to the coordinator (workerIDPattern).
	ID string
	// Coordinator is the coordinator's base URL, e.g. "http://host:8080".
	Coordinator string
	// AdvertiseURL is the base URL where the coordinator reaches this
	// worker's listener.
	AdvertiseURL string
	// Cores is the advertised parallelism (default GOMAXPROCS). Shards run
	// with this worker count; it never changes results.
	Cores int
	// Heartbeat overrides the lease-renewal interval; zero derives it from
	// the coordinator's lease TTL (a third of it).
	Heartbeat time.Duration
	// Logger receives operational events; nil discards them.
	Logger *log.Logger
	// Client issues coordinator requests; nil gets a default.
	Client *http.Client
}

// Worker executes shards for a coordinator: it serves POST /fabric/v1/shards
// and keeps itself registered with heartbeats. Results are pure functions of
// the shard (model, window, seed), so any fleet member — or the coordinator
// itself — computes identical win counts.
type Worker struct {
	info        WorkerInfo
	coordinator string
	heartbeat   time.Duration
	logger      *log.Logger
	client      *http.Client
}

// NewWorker validates the configuration and builds a Worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Cores <= 0 {
		cfg.Cores = runtime.GOMAXPROCS(0)
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	u, err := url.Parse(cfg.Coordinator)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("fabric: coordinator url %q is not an absolute URL", cfg.Coordinator)
	}
	w := &Worker{
		info: WorkerInfo{
			ID: cfg.ID, URL: cfg.AdvertiseURL,
			Cores: cfg.Cores, Version: scenario.Version(),
		},
		coordinator: strings.TrimSuffix(cfg.Coordinator, "/"),
		heartbeat:   cfg.Heartbeat,
		logger:      cfg.Logger,
		client:      cfg.Client,
	}
	if err := w.info.validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// Routes mounts the worker's endpoints on mux.
func (w *Worker) Routes(mux *http.ServeMux) {
	mux.HandleFunc("POST /fabric/v1/shards", w.handleShard)
	mux.HandleFunc("GET /fabric/v1/healthz", w.handleHealthz)
}

// handleShard runs trials [lo, hi) of one window and answers with the win
// count. The window's randomness is fully determined by the request (trial
// rep draws only from rng.NewStream(seed, rep)), so the response is a pure
// function of the body. Execution errors answer 422 — the coordinator knows
// not to reassign a shard that failed deterministically — while transport
// and decode problems answer 400.
func (w *Worker) handleShard(rw http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(rw, req.Body, 1<<20))
	if err != nil {
		fabricError(rw, http.StatusRequestEntityTooLarge, "reading body: %v", err)
		return
	}
	var shard ShardRequest
	if err := json.Unmarshal(body, &shard); err != nil {
		fabricError(rw, http.StatusBadRequest, "parsing shard: %v", err)
		return
	}
	if err := shard.validate(); err != nil {
		fabricError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	p, err := shard.Model.BuildProtocol()
	if err != nil {
		fabricError(rw, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	wins, err := consensus.CountWins(p, shard.N, shard.Delta, shard.Lo, shard.Hi, consensus.EstimateOptions{
		Workers: w.info.Cores,
		Seed:    shard.Seed,
		// A coordinator that gave up on the shard (or died) cancels the
		// request context; aborting between trials frees the cores for the
		// reassigned copy.
		Interrupt: req.Context().Err,
	})
	if err != nil {
		fabricError(rw, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	fabricJSON(rw, http.StatusOK, ShardResult{Wins: wins, Trials: shard.Hi - shard.Lo})
}

func (w *Worker) handleHealthz(rw http.ResponseWriter, _ *http.Request) {
	fabricJSON(rw, http.StatusOK, map[string]any{
		"status":  "ok",
		"id":      w.info.ID,
		"version": w.info.Version,
		"cores":   w.info.Cores,
	})
}

// register performs one registration (or heartbeat) exchange and returns the
// coordinator's lease TTL.
func (w *Worker) register() (time.Duration, error) {
	body, err := json.Marshal(w.info)
	if err != nil {
		return 0, err
	}
	var lease time.Duration
	err = ioretry.Do(workerRegisterRetry, func() error {
		resp, err := w.client.Post(w.coordinator+"/fabric/v1/workers", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("fabric: coordinator answered %s", resp.Status)
		}
		var r registerResponse
		if err := json.Unmarshal(data, &r); err != nil {
			return err
		}
		lease = time.Duration(r.LeaseSeconds * float64(time.Second))
		return nil
	})
	return lease, err
}

// deregister says goodbye; best-effort, for graceful shutdown.
func (w *Worker) deregister() {
	req, err := http.NewRequest(http.MethodDelete, w.coordinator+"/fabric/v1/workers/"+w.info.ID, nil)
	if err != nil {
		return
	}
	resp, err := w.client.Do(req)
	if err != nil {
		w.logger.Printf("fabric: deregister: %v", err)
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
}

// Run registers with the coordinator and heartbeats until ctx is cancelled,
// then deregisters. A heartbeat that fails (including one suppressed by the
// worker-heartbeat fault point) is logged and retried at the next tick; the
// lease protocol turns a persistently silent worker into an evicted one, so
// Run never needs to crash the process.
func (w *Worker) Run(ctx context.Context) error {
	lease, err := w.register()
	if err != nil {
		return fmt.Errorf("fabric: registering with %s: %w", w.coordinator, err)
	}
	interval := w.heartbeat
	if interval <= 0 {
		interval = lease / 3
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	w.logger.Printf("fabric: registered %s with %s (lease %v, heartbeat every %v)", w.info.ID, w.coordinator, lease, interval)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			w.deregister()
			return ctx.Err()
		case <-ticker.C:
			if err := faultpoint.Hit(faultpoint.WorkerHeartbeat); err != nil {
				w.logger.Printf("fabric: heartbeat suppressed: %v", err)
				continue
			}
			if _, err := w.register(); err != nil {
				w.logger.Printf("fabric: heartbeat: %v", err)
			}
		}
	}
}
