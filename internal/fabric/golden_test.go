package fabric

import (
	"context"
	"encoding/json"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"lvmajority/internal/scenario"
	"lvmajority/internal/sweep"
)

// The fleet-vs-local equivalence matrix: the fabric variant of the
// scenario package's TestRunnerReproducesCommittedManifests (which the
// import direction keeps over there — fabric imports scenario, so the
// manifest oracle for fleet execution lives here). Every spec in the
// committed fleet corpus, plus a sweep that exercises the probe cache,
// runs (a) purely locally, (b) through a 1-worker fleet, and (c) through a
// 3-worker fleet under an adversarial shard assignment; the full JSON-
// rendered manifests must be byte-identical across all three.

// corpusSpecs loads the committed loadgen corpus and appends a sweep spec
// so the matrix also covers the sweep/probe-cache path the corpus's
// server-submittable specs avoid.
func corpusSpecs(t *testing.T) []scenario.Spec {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "fleet", "specs", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		t.Fatal("no committed fleet corpus specs")
	}
	var specs []scenario.Spec
	for _, path := range paths {
		loaded, err := scenario.LoadSpecs(path)
		if err != nil {
			t.Fatalf("corpus %s: %v", path, err)
		}
		specs = append(specs, loaded...)
	}
	sweepSpec := scenario.New(scenario.TaskSweep)
	sweepSpec.Model = &scenario.Model{Kind: scenario.ModelProtocol, Protocol: &scenario.ProtocolModel{Name: "voter"}}
	sweepSpec.Seed = 404
	sweepSpec.Sweep = &scenario.SweepSpec{Grid: []int{16, 32}, Trials: 300, Target: 0.9, Lanes: 2}
	sweepSpec.Cache = &scenario.CacheSpec{Policy: scenario.CacheShared}
	specs = append(specs, sweepSpec)
	return specs
}

// runSpec executes one spec and renders its manifests canonically. Wall
// time is the one provenance field that legitimately varies between runs
// (the scenario package's manifest oracle excludes it too); it is zeroed so
// the rest of the document must match to the byte.
func runSpec(t *testing.T, r *scenario.Runner, spec scenario.Spec) []byte {
	t.Helper()
	res, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res.Manifests)
	if err != nil {
		t.Fatal(err)
	}
	var docs []map[string]json.RawMessage
	if err := json.Unmarshal(data, &docs); err != nil {
		t.Fatal(err)
	}
	for _, doc := range docs {
		if _, ok := doc["wall_time_ns"]; ok {
			doc["wall_time_ns"] = json.RawMessage("0")
		}
	}
	if data, err = json.Marshal(docs); err != nil {
		t.Fatal(err)
	}
	return data
}

func TestFleetReproducesLocalManifests(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the corpus three times; skipped with -short")
	}
	specs := corpusSpecs(t)
	zero := func() time.Time { return time.Time{} }

	// The local reference: a Runner with no probe factory at all.
	want := make([][]byte, len(specs))
	local := &scenario.Runner{Now: zero, Cache: sweep.NewCache()}
	for i, spec := range specs {
		want[i] = runSpec(t, local, spec)
	}

	for _, tc := range []struct {
		name        string
		workers     int
		adversarial bool
	}{
		{"1-worker", 1, false},
		{"3-workers-adversarial", 3, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{ShardTrials: 64}
			var infos []WorkerInfo
			for i := 0; i < tc.workers; i++ {
				info, _ := startWorker(t, []string{"gold-a", "gold-b", "gold-c"}[i])
				infos = append(infos, info)
			}
			if tc.adversarial {
				// Pin every shard to the lexicographically last worker:
				// assignment must not matter, so the worst imbalance is as
				// good as the fairest.
				cfg.Assign = func(live []string, lo, hi int) string { return live[len(live)-1] }
			}
			coord := newTestCoordinator(t, cfg)
			for _, info := range infos {
				if _, err := coord.Register(info); err != nil {
					t.Fatal(err)
				}
			}
			fleet := &scenario.Runner{Now: zero, Cache: sweep.NewCache(), Probes: coord.Probes()}
			for i, spec := range specs {
				got := runSpec(t, fleet, spec)
				if string(got) != string(want[i]) {
					t.Errorf("spec %d manifests differ from the local run:\nfleet %s\nlocal %s", i, got, want[i])
				}
			}
			if st := coord.FleetStats(); st.ShardsDispatched == 0 {
				t.Error("fleet run dispatched no shards: the matrix compared local against local")
			}
		})
	}
}
