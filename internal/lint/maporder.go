package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"lvmajority/internal/lint/analysis"
)

// MapOrder flags `range` over a map whose loop body feeds an
// order-sensitive sink: appending to a slice, writing output (Write*,
// fmt.Print*/Fprint*), building a table row (AddRow), feeding a hash, or
// accumulating a string. Go map iteration order is deliberately
// randomized, so each of these silently produces a different artifact per
// run — the classic determinism killer in manifests, tables, and cache
// keys.
//
// The canonical fix — collecting the keys and sorting them before the real
// iteration — is recognized: an append whose slice is later passed to a
// sort.* or slices.* call in the same function is not flagged.
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag map iteration feeding order-sensitive sinks\n\n" +
		"Iterating a map while appending, writing, hashing, or building a\n" +
		"table produces a different result every run. Iterate sorted keys\n" +
		"instead.",
	Run: runMapOrder,
}

// sinkMethods are method names whose call inside a map-range body is
// order-sensitive regardless of receiver: byte/string writers (including
// hash.Hash.Write — hashing map order breaks cache keys) and table rows.
var sinkMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"AddRow":      true,
}

// sinkFmtFuncs are the fmt output functions.
var sinkFmtFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runMapOrder(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		// Collect the enclosing function body for each map-range so the
		// sorted-later exemption can see past the loop.
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, rs, enclosingFuncBody(stack))
			return true
		})
	}
	return nil, nil
}

// enclosingFuncBody returns the body of the innermost function containing
// the top of stack, or nil at file scope.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 2; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

func checkMapRangeBody(pass *analysis.Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n != rs {
				// A nested map-range reports on its own; a nested
				// slice-range body still belongs to this map's iteration
				// order, so keep descending.
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						return false
					}
				}
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rs, funcBody, n)
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				checkMapRangeCall(pass, rs, call)
			}
		}
		return true
	})
}

// checkMapRangeAssign flags order-sensitive assignments inside a map-range
// body: string accumulation and slice appends that are not sorted later.
func checkMapRangeAssign(pass *analysis.Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt, as *ast.AssignStmt) {
	if as.Tok == token.ADD_ASSIGN {
		if t := pass.TypesInfo.TypeOf(as.Lhs[0]); t != nil && isString(t) {
			pass.Reportf(as.Pos(), "string built up inside map iteration has a random order every run; iterate sorted keys instead")
		}
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass.TypesInfo, call) {
			continue
		}
		if i < len(as.Lhs) && funcBody != nil && sortedLater(pass, funcBody, as.Lhs[i]) {
			continue
		}
		pass.Reportf(call.Pos(), "append inside map iteration produces a randomly ordered slice; iterate sorted keys, or sort the slice afterwards")
	}
}

// checkMapRangeCall flags order-sensitive call statements: writer and table
// methods, and fmt output functions.
func checkMapRangeCall(pass *analysis.Pass, rs *ast.RangeStmt, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if path := pkgPathOf(pass.TypesInfo, sel.X); path != "" {
		if path == "fmt" && sinkFmtFuncs[sel.Sel.Name] {
			pass.Reportf(call.Pos(), "fmt.%s inside map iteration writes output in a random order every run; iterate sorted keys instead", sel.Sel.Name)
		}
		return
	}
	if sinkMethods[sel.Sel.Name] {
		pass.Reportf(call.Pos(), "%s inside map iteration feeds an order-sensitive sink in a random order every run; iterate sorted keys instead", sel.Sel.Name)
	}
}

// sortedLater reports whether slice (an append target) is an argument of a
// sort.* or slices.* call anywhere in the enclosing function — the
// collect-then-sort idiom.
func sortedLater(pass *analysis.Pass, funcBody *ast.BlockStmt, slice ast.Expr) bool {
	obj := exprObject(pass.TypesInfo, slice)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch pkgPathOf(pass.TypesInfo, sel.X) {
		case "sort", "slices", "maps":
		default:
			return true
		}
		for _, arg := range call.Args {
			argFound := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					argFound = true
				}
				return !argFound
			})
			if argFound {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// exprObject resolves the variable object behind an append target: a plain
// identifier or the root identifier of a selector chain.
func exprObject(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			if obj := info.Uses[e]; obj != nil {
				return obj
			}
			return info.Defs[e]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
