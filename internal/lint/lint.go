// Package lint is the repository's determinism lint suite: five custom
// static analyzers that mechanically enforce the invariants every result in
// this reproduction rests on but no compiler checks.
//
// The invariants, and the analyzer guarding each:
//
//   - detrand: engine packages draw randomness only from replicate-keyed
//     rng.NewStream streams and never read the wall clock, so estimates are
//     byte-identical for any worker or lane count.
//   - maporder: no Go map iteration feeds an order-sensitive sink (slice
//     append, writer, table, hash) — the classic silent determinism killer.
//   - interrupt: option literals (mc.Options, sweep.Options, the estimate
//     and experiment configs) never drop an available Interrupt on the
//     floor, so long runs stay cancellable end to end (the bug class PR 5
//     fixed by hand-audit).
//   - hotpath: regions marked //lint:hotpath — the compiled kernels'
//     inner loops — contain no allocation-prone constructs (append growth,
//     closures, interface conversions, fmt, string concatenation, defer),
//     keeping the 0 allocs/event benchmarks structural rather than lucky.
//   - speclock: every exported field reachable from scenario.Spec carries a
//     json tag and is exercised by the committed golden spec, so schema v1
//     cannot drift silently.
//
// False positives are suppressed in place with a justified directive:
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line above. A bare //lint:ignore without an
// analyzer name and a reason is itself a diagnostic — unexplained
// suppressions are how invariants rot.
//
// The suite runs through cmd/lint, standalone (`lint ./...`) or as a
// `go vet -vettool` unit checker; CI runs it on every push.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"lvmajority/internal/lint/analysis"
)

// Suite returns the determinism analyzers in their canonical order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		DetRand,
		MapOrder,
		Interrupt,
		HotPath,
		SpecLock,
	}
}

// DirectiveAnalyzer is the name diagnostics about malformed //lint:
// directives are reported under. It is always active and cannot be
// suppressed.
const DirectiveAnalyzer = "lintdirective"

// A Diag is one rendered finding: a position, the analyzer that produced
// it, and the message.
type Diag struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Analyzer, d.Message)
}

// RunPackage applies every analyzer in suite to one type-checked package
// and returns the surviving diagnostics sorted by position. The
// //lint:ignore suppression filter is applied here — analyzers report
// unconditionally — and malformed directives are reported under
// DirectiveAnalyzer.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, suite []*analysis.Analyzer) ([]Diag, error) {
	known := make(map[string]bool, len(suite))
	for _, a := range suite {
		known[a.Name] = true
	}
	ignores, hygiene := parseDirectives(fset, files, known)

	var out []Diag
	out = append(out, hygiene...)
	for _, a := range suite {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			if ignores.suppressed(name, pos) {
				return
			}
			out = append(out, Diag{Position: pos, Analyzer: name, Message: d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path(), a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// enginePackages are the import-path segments (under internal/) whose code
// runs inside replicated trials: randomness and wall-clock discipline is
// enforced there by detrand.
var enginePackages = []string{
	"protocols", "crn", "lv", "mc", "sim", "moran",
	"gossip", "spatial", "consensus", "sweep", "rng",
	// The fault-tolerance layers execute inside trial and flush loops:
	// injected faults and retry backoffs must be as reproducible as the
	// trials they perturb, so they obey the same discipline.
	"faultpoint", "ioretry",
}

// inEngineScope reports whether pkgPath contains an internal/<engine>
// segment pair, e.g. lvmajority/internal/mc or lvmajority/internal/mc/sub.
func inEngineScope(pkgPath string) bool {
	segs := strings.Split(pkgPath, "/")
	for i := 0; i+1 < len(segs); i++ {
		if segs[i] != "internal" {
			continue
		}
		for _, name := range enginePackages {
			if segs[i+1] == name {
				return true
			}
		}
	}
	return false
}

// pkgPathOf resolves a selector qualifier to the imported package path, or
// "" when expr is not a package qualifier.
func pkgPathOf(info *types.Info, expr ast.Expr) string {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}
