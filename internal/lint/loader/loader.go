// Package loader loads type-checked packages for the lint driver without
// depending on golang.org/x/tools/go/packages: it shells out to
// `go list -deps -export -json`, which compiles dependencies into the build
// cache and reports their export-data files, then parses each target
// package's sources and type-checks them against that export data with the
// standard library's gc importer. Test files are included (`go list -test`),
// matching what `go vet` analyzes.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Package is one parsed, type-checked package ready for analysis.
type Package struct {
	// Path is the import path; test variants carry go list's bracketed
	// suffix (e.g. "p [p.test]").
	Path  string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	GoFiles    []string
	CgoFiles   []string
	ImportMap  map[string]string
	Module     *struct{ GoVersion string }
	Error      *struct{ Err string }
}

// Load lists patterns in dir (including test variants), compiles export
// data for the dependency graph, and returns every matched non-synthetic
// package parsed and type-checked. The result is sorted by import path, so
// downstream diagnostics are deterministic.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-test", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var listed []*listPackage
	dec := json.NewDecoder(out)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: parsing go list output: %w", err)
		}
		listed = append(listed, lp)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("loader: go list: %w\n%s", err, stderr.String())
	}

	exports := make(map[string]string, len(listed))
	byPath := make(map[string]*listPackage, len(listed))
	for _, lp := range listed {
		byPath[lp.ImportPath] = lp
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}

	var targets []*listPackage
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard || lp.Name == "" {
			continue
		}
		if strings.HasSuffix(lp.ImportPath, ".test") {
			continue // the synthetic generated test main
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("loader: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		targets = append(targets, lp)
	}
	// When an internal test variant "p [p.test]" exists, it strictly
	// supersets the plain package's files; analyzing both would duplicate
	// every diagnostic on the shared files.
	hasTestVariant := make(map[string]bool)
	for _, lp := range targets {
		if lp.ForTest != "" && lp.ImportPath == lp.ForTest+" ["+lp.ForTest+".test]" {
			hasTestVariant[lp.ForTest] = true
		}
	}
	var pkgs []*Package
	for _, lp := range targets {
		if lp.ForTest == "" && hasTestVariant[lp.ImportPath] {
			continue
		}
		p, err := typecheck(lp, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// typecheck parses lp's sources and type-checks them against the export
// data of its dependencies.
func typecheck(lp *listPackage, exports map[string]string) (*Package, error) {
	if len(lp.CgoFiles) > 0 {
		return nil, fmt.Errorf("loader: %s uses cgo, which this loader does not support", lp.ImportPath)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	names := append([]string(nil), lp.GoFiles...)
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("loader: %s: %w", lp.ImportPath, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := &types.Config{
		Importer: ExportImporter(fset, lp.ImportMap, exports),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	if lp.Module != nil {
		conf.GoVersion = "go" + lp.Module.GoVersion
	}
	tpkg, err := conf.Check(strings.Fields(lp.ImportPath)[0], fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %w", lp.ImportPath, err)
	}
	return &Package{
		Path:  lp.ImportPath,
		Name:  lp.Name,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// NewInfo returns a types.Info with every map the analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// ExportImporter returns a types.Importer resolving imports through
// importMap (source path -> canonical path, identity when absent) to gc
// export-data files. It is built on the standard library's gc importer, so
// it reads exactly what the toolchain in use wrote.
func ExportImporter(fset *token.FileSet, importMap, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}
