package lint

import (
	"encoding/json"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"strings"

	"lvmajority/internal/lint/analysis"
)

// specLockGolden is the committed golden spec exercising every Spec field,
// relative to the scenario package directory. The scenario round-trip test
// (TestSpecLockGolden) keeps the file strictly parseable and valid; this
// analyzer keeps it complete.
const specLockGolden = "testdata/speclock_golden.json"

// SpecLock guards the strict-JSON schema of the declarative run API: in a
// package named scenario that defines a struct type Spec, every exported
// field of Spec and of every struct reachable from it must carry an
// explicit json tag (no implicit field names, no json:"-") and its tag name
// must appear in the committed golden spec file
// testdata/speclock_golden.json. A field added without a tag, or without a
// golden-spec entry, is a diagnostic — so schema v1 cannot drift silently
// and the round-trip guarantee ("a spec never silently means less than it
// says") stays mechanical.
var SpecLock = &analysis.Analyzer{
	Name: "speclock",
	Doc: "lock the scenario.Spec JSON schema to the golden spec\n\n" +
		"Every exported field reachable from scenario.Spec needs an\n" +
		"explicit json tag and an entry in testdata/speclock_golden.json;\n" +
		"regenerate or extend the golden spec on intentional schema\n" +
		"changes.",
	Run: runSpecLock,
}

func runSpecLock(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() != "scenario" {
		return nil, nil
	}
	specObj := pass.Pkg.Scope().Lookup("Spec")
	if specObj == nil {
		return nil, nil
	}
	tn, ok := specObj.(*types.TypeName)
	if !ok {
		return nil, nil
	}
	root, ok := tn.Type().(*types.Named)
	if !ok {
		return nil, nil
	}
	if _, ok := root.Underlying().(*types.Struct); !ok {
		return nil, nil
	}

	goldenKeys, goldenErr := loadGoldenKeys(pass, specObj)

	seen := map[*types.Named]bool{}
	queue := []*types.Named{root}
	for len(queue) > 0 {
		named := queue[0]
		queue = queue[1:]
		if seen[named] {
			continue
		}
		seen[named] = true
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			if !field.Exported() {
				continue
			}
			if next := reachableStruct(pass.Pkg, field.Type()); next != nil {
				queue = append(queue, next)
			}
			tag, ok := reflect.StructTag(st.Tag(i)).Lookup("json")
			name := strings.Split(tag, ",")[0]
			switch {
			case !ok || name == "":
				pass.Reportf(field.Pos(), "%s.%s has no json tag: every Spec field must name its wire key explicitly", named.Obj().Name(), field.Name())
				continue
			case name == "-":
				pass.Reportf(field.Pos(), "%s.%s is excluded from JSON (json:\"-\"): Spec fields must round-trip losslessly", named.Obj().Name(), field.Name())
				continue
			}
			if goldenErr == nil && !goldenKeys[name] {
				pass.Reportf(field.Pos(), "%s.%s (json %q) is not exercised by %s: add it to the golden spec so the schema cannot drift silently",
					named.Obj().Name(), field.Name(), name, specLockGolden)
			}
		}
	}
	if goldenErr != nil {
		pass.Reportf(specObj.Pos(), "cannot read %s: %v (the golden spec is the schema lock — commit one covering every field)", specLockGolden, goldenErr)
	}
	return nil, nil
}

// loadGoldenKeys reads the golden spec next to the file declaring Spec and
// returns the set of every JSON object key appearing anywhere in it.
func loadGoldenKeys(pass *analysis.Pass, specObj types.Object) (map[string]bool, error) {
	dir := filepath.Dir(pass.Fset.Position(specObj.Pos()).Filename)
	data, err := os.ReadFile(filepath.Join(dir, filepath.FromSlash(specLockGolden)))
	if err != nil {
		return nil, err
	}
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, err
	}
	keys := make(map[string]bool)
	collectKeys(v, keys)
	return keys, nil
}

func collectKeys(v any, keys map[string]bool) {
	switch v := v.(type) {
	case map[string]any:
		for k, val := range v {
			keys[k] = true
			collectKeys(val, keys)
		}
	case []any:
		for _, val := range v {
			collectKeys(val, keys)
		}
	}
}

// reachableStruct unwraps pointers, slices, arrays, and map values to the
// named struct type behind a field, when it belongs to the same package.
func reachableStruct(pkg *types.Package, t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Named:
			if _, ok := u.Underlying().(*types.Struct); !ok {
				return nil
			}
			if u.Obj().Pkg() != pkg {
				return nil
			}
			return u
		default:
			return nil
		}
	}
}
