package lint_test

import (
	"path/filepath"
	"testing"

	"lvmajority/internal/lint"
	"lvmajority/internal/lint/analysistest"
)

// Each analyzer runs over fixture packages under testdata/src through the
// full suite (so //lint:ignore suppression behaves as in production). The
// fixtures pair every firing case with a suppressed or out-of-scope one.

func testdata(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestDetRand(t *testing.T) {
	analysistest.Run(t, testdata(t), lint.Suite(),
		"lvmajority/internal/mc/detrandfix",
		"lvmajority/internal/report/detrandok",
	)
}

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, testdata(t), lint.Suite(), "example/maporderfix")
}

func TestInterrupt(t *testing.T) {
	analysistest.Run(t, testdata(t), lint.Suite(), "example/interruptfix")
}

func TestHotPath(t *testing.T) {
	analysistest.Run(t, testdata(t), lint.Suite(), "example/hotpathfix")
}

func TestSpecLock(t *testing.T) {
	analysistest.Run(t, testdata(t), lint.Suite(),
		"example/scenario",
		"example/scenariomissing",
	)
}
