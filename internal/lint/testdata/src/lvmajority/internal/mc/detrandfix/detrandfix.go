// Package detrandfix exercises the detrand analyzer inside engine scope
// (the import path contains internal/mc): math/rand and wall-clock reads
// are diagnostics, and a justified //lint:ignore suppresses one.
package detrandfix

import (
	"math/rand" // want `engine package imports math/rand`
	"time"
)

func entropy() float64 {
	return rand.Float64() // want `use of math/rand\.Float64 in an engine package`
}

func now() time.Time {
	return time.Now() // want `wall-clock read time\.Now in an engine package`
}

func elapsed(t0 time.Time) time.Duration {
	//lint:ignore detrand progress display only, never feeds an estimate
	return time.Since(t0)
}
