// Package detrandok shows detrand is scoped: a package outside the engine
// subtrees (internal/report here) may use math/rand and the wall clock
// freely — no line in this file carries an expectation.
package detrandok

import (
	"math/rand"
	"time"
)

func jitter() float64 {
	_ = time.Now()
	return rand.Float64()
}
