// Package maporderfix exercises the maporder analyzer: map iteration
// feeding order-sensitive sinks fires, the collect-then-sort idiom and a
// justified //lint:ignore do not.
package maporderfix

import (
	"fmt"
	"sort"
	"strings"
)

func appendUnsorted(m map[string]int) []string {
	var names []string
	for name := range m {
		names = append(names, name) // want `append inside map iteration`
	}
	return names
}

func appendSorted(m map[string]int) []string {
	var names []string
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func printAll(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside map iteration`
	}
}

func write(m map[string]int, w *strings.Builder) {
	for k := range m {
		w.WriteString(k) // want `WriteString inside map iteration`
	}
}

func concat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `string built up inside map iteration`
	}
	return s
}

func suppressed(m map[string]int) []string {
	var names []string
	for name := range m {
		//lint:ignore maporder order is re-established by the caller
		names = append(names, name)
	}
	return names
}
