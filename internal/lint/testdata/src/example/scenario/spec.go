// Package scenario mimics the real spec package for the speclock
// analyzer: the package name and the Spec root struct put it in scope.
// Untagged and json:"-" fields fire, as does a tagged field whose key the
// golden spec does not exercise; a justified //lint:ignore suppresses one.
package scenario

// Spec is the root config struct.
type Spec struct {
	Run      string    `json:"run"`
	Estimate *Estimate `json:"estimate,omitempty"`
	Untagged int       // want `Spec\.Untagged has no json tag`
	Hidden   string    `json:"-"` // want `Spec\.Hidden is excluded from JSON`
}

// Estimate is a sub-spec reachable from Spec, so its fields are locked too.
type Estimate struct {
	Trials int `json:"trials"`
	Fresh  int `json:"fresh_knob"` // want `Estimate\.Fresh .json .fresh_knob.. is not exercised`
	Legacy int `json:"legacy"`     //lint:ignore speclock retired knob kept for old specs, deliberately unexercised
}
