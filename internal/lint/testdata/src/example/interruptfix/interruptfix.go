// Package interruptfix exercises the interrupt analyzer: an option
// literal dropping an available interrupt source fires; threading it,
// assigning it later, positional construction, having no source in scope,
// and a justified //lint:ignore do not.
package interruptfix

import "context"

// Options mimics the engine option structs: any struct carrying an
// Interrupt func() error field is in scope for the analyzer.
type Options struct {
	Trials    int
	Interrupt func() error
}

func run(opts Options) int { return opts.Trials }

func dropsContext(ctx context.Context) int {
	_ = ctx
	return run(Options{Trials: 10}) // want `Options literal leaves Interrupt unset while ctx is available`
}

func threads(ctx context.Context) int {
	return run(Options{Trials: 10, Interrupt: func() error { return ctx.Err() }})
}

func assignedLater(interrupt func() error) int {
	opts := Options{Trials: 10}
	opts.Interrupt = interrupt
	return run(opts)
}

func positional(ctx context.Context) int {
	return run(Options{10, func() error { return ctx.Err() }})
}

func noSource() int {
	return run(Options{Trials: 10})
}

func suppressedDrop(ctx context.Context) int {
	_ = ctx
	//lint:ignore interrupt this probe is bounded to microseconds
	return run(Options{Trials: 1})
}
