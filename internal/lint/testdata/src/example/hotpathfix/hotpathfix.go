// Package hotpathfix exercises the hotpath analyzer: allocation-prone
// constructs inside //lint:hotpath regions fire, code outside the marked
// region and a justified //lint:ignore do not.
package hotpathfix

import "fmt"

// kernel is a marked hot function: the whole body is the region.
//
//lint:hotpath
func kernel(events []int, out []int) []int {
	for _, e := range events {
		out = append(out, e) // want `append in hot path`
	}
	defer fmt.Println("done") // want `defer in hot path` `call into fmt in hot path`
	return out
}

//lint:hotpath
func closures(events []int) int {
	total := 0
	f := func() { total++ } // want `closure literal in hot path`
	f()
	return total
}

//lint:hotpath
func allocates(n int) []int {
	return make([]int, n) // want `make in hot path allocates`
}

//lint:hotpath
func concat(a, b string) string {
	return a + b // want `string concatenation in hot path allocates`
}

//lint:hotpath
func literal(x int) []int {
	return []int{x} // want `slice or map literal in hot path`
}

type counter int

func consume(v any) {}

//lint:hotpath
func boxes(events []counter) {
	for _, e := range events {
		consume(e) // want `argument converts counter to interface`
	}
}

// loopMarked marks only its loop: the make above the directive is setup
// and stays legal.
func loopMarked(events []int, sink *int) {
	buf := make([]int, 0, len(events))
	//lint:hotpath
	for _, e := range events {
		buf = append(buf, e) // want `append in hot path`
	}
	*sink = len(buf)
}

//lint:hotpath
func guarded(events []int) error {
	for _, e := range events {
		if e < 0 {
			//lint:ignore hotpath unreachable guard, inputs are validated upstream
			return fmt.Errorf("negative event %d", e)
		}
	}
	return nil
}
