// Package scenario without a committed golden spec: the analyzer reports
// the missing schema lock at the Spec declaration, because the golden file
// is what makes the lock mechanical.
package scenario

type Spec struct { // want `cannot read testdata/speclock_golden\.json`
	Run string `json:"run"`
}
