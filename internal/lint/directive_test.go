package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"lvmajority/internal/lint"
	"lvmajority/internal/lint/loader"
)

// hygieneSrc collects every malformed //lint: directive shape. The final
// case pairs a bare //lint:ignore with a well-formed directive on the line
// above, proving hygiene findings cannot themselves be suppressed.
const hygieneSrc = `package fixture

//lint:ignore
func a() {}

//lint:ignore detrand
func b() {}

//lint:ignore nosuch because reasons
func c() {}

//lint:frobnicate
func d() {}

//lint:ignore detrand trying to hush the bare directive below
//lint:ignore
func e() {}
`

func TestDirectiveHygiene(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", hygieneSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	files := []*ast.File{f}
	info := loader.NewInfo()
	pkg, err := (&types.Config{}).Check("example/fixture", fset, files, info)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunPackage(fset, files, pkg, info, lint.Suite())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"bare //lint:ignore directive",
		"without a reason",
		"unknown analyzer nosuch",
		"unknown //lint: directive frobnicate",
		"bare //lint:ignore directive",
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(want), diags)
	}
	for i, d := range diags {
		if d.Analyzer != lint.DirectiveAnalyzer {
			t.Errorf("diag %d reported under %q, want %q", i, d.Analyzer, lint.DirectiveAnalyzer)
		}
		if !strings.Contains(d.Message, want[i]) {
			t.Errorf("diag %d = %q, want substring %q", i, d.Message, want[i])
		}
	}
}
