package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"lvmajority/internal/lint/analysis"
)

// Interrupt flags composite literals of option types that carry an
// `Interrupt func() error` field — mc.Options, sweep.Options,
// consensus.EstimateOptions/ThresholdOptions, experiment.Config and
// friends — constructed in a function where an interrupt source is plainly
// available (a context.Context, an interrupt-named func() error, or a
// parameter whose struct type carries an Interrupt field) but the field is
// left unset. Dropping the interrupt silently makes a run uncancellable —
// the exact bug class PR 5 had to fix by hand-audit when it threaded
// cancellation through every CLI and the server.
//
// A literal whose variable is assigned an Interrupt later in the same
// function (`opts := mc.Options{...}; opts.Interrupt = f`) is not flagged.
var Interrupt = &analysis.Analyzer{
	Name: "interrupt",
	Doc: "flag option literals that drop an available Interrupt\n\n" +
		"A composite literal of an options struct with an Interrupt field\n" +
		"must set it whenever the enclosing function has an interrupt\n" +
		"source in scope, so cancellation reaches every nested run.",
	Run: runInterrupt,
}

func runInterrupt(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				checkInterruptFunc(pass, fn.Type, fn.Recv, fn.Body)
				return false // checkInterruptFunc descends into nested literals itself
			}
			return true
		})
	}
	return nil, nil
}

// checkInterruptFunc scans one function (and, with inherited sources, its
// nested function literals) for unset-Interrupt option literals.
func checkInterruptFunc(pass *analysis.Pass, ft *ast.FuncType, recv *ast.FieldList, body *ast.BlockStmt) {
	sources := interruptSources(pass, ft, recv, nil)
	checkInterruptBody(pass, body, sources)
}

func checkInterruptBody(pass *analysis.Pass, body *ast.BlockStmt, sources []string) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			nested := interruptSources(pass, n.Type, nil, sources)
			checkInterruptBody(pass, n.Body, nested)
			return false
		case *ast.CompositeLit:
			checkOptionLit(pass, body, n, sources)
		}
		return true
	})
}

// interruptSources collects the interrupt carriers visible from a
// function's receiver and parameters, plus any inherited from an enclosing
// function (closure capture). Each entry is a human-readable name for the
// diagnostic.
func interruptSources(pass *analysis.Pass, ft *ast.FuncType, recv *ast.FieldList, inherited []string) []string {
	sources := append([]string(nil), inherited...)
	addField := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.TypesInfo.TypeOf(field.Type)
			if t == nil {
				continue
			}
			names := field.Names
			if len(names) == 0 {
				continue // unnamed parameter cannot be used anyway
			}
			for _, name := range names {
				if name.Name == "_" {
					continue
				}
				switch {
				case isContext(t):
					sources = append(sources, name.Name)
				case isInterruptFunc(t) && strings.Contains(strings.ToLower(name.Name), "interrupt"):
					sources = append(sources, name.Name)
				case hasInterruptField(t):
					sources = append(sources, name.Name+".Interrupt")
				}
			}
		}
	}
	addField(recv)
	if ft != nil {
		addField(ft.Params)
	}
	return sources
}

// checkOptionLit flags lit if its type has an Interrupt field the literal
// leaves unset while sources are available, unless the literal's variable
// gains an Interrupt by assignment later in the function.
func checkOptionLit(pass *analysis.Pass, funcBody *ast.BlockStmt, lit *ast.CompositeLit, sources []string) {
	if len(sources) == 0 {
		return
	}
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok || !structHasInterrupt(st) {
		return
	}
	if len(lit.Elts) > 0 {
		if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed {
			return // positional literal sets every field, Interrupt included
		}
	}
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Interrupt" {
				return
			}
		}
	}
	if interruptAssignedLater(pass, funcBody, lit) {
		return
	}
	pass.Reportf(lit.Pos(), "%s literal leaves Interrupt unset while %s is available in scope — thread the interrupt so the run stays cancellable",
		types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)), strings.Join(sources, ", "))
}

// interruptAssignedLater reports whether the literal initializes a variable
// whose Interrupt field is assigned somewhere in the enclosing function.
func interruptAssignedLater(pass *analysis.Pass, funcBody *ast.BlockStmt, lit *ast.CompositeLit) bool {
	var target types.Object
	ast.Inspect(funcBody, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || target != nil {
			return target == nil
		}
		for i, rhs := range as.Rhs {
			r := rhs
			if u, ok := r.(*ast.UnaryExpr); ok {
				r = u.X
			}
			if r != ast.Expr(lit) || i >= len(as.Lhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					target = obj
				} else {
					target = pass.TypesInfo.Uses[id]
				}
			}
		}
		return target == nil
	})
	if target == nil {
		return false
	}
	assigned := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || assigned {
			return !assigned
		}
		for _, lhs := range as.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Interrupt" {
				continue
			}
			if id, ok := sel.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == target {
				assigned = true
			}
		}
		return !assigned
	})
	return assigned
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isInterruptFunc reports whether t is func() error.
func isInterruptFunc(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// hasInterruptField reports whether t (possibly a pointer) is a struct with
// an exported Interrupt field of type func() error.
func hasInterruptField(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return ok && structHasInterrupt(st)
}

func structHasInterrupt(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "Interrupt" && isInterruptFunc(f.Type()) {
			return true
		}
	}
	return false
}
