// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis API surface the repository's determinism
// lint suite needs.
//
// The build environment for this repository is hermetic: the module has no
// external dependencies and the toolchain image carries no module cache, so
// golang.org/x/tools cannot be required from go.mod. Rather than give up
// mechanical enforcement of the determinism invariants, this package mirrors
// the x/tools types field-for-field (Analyzer, Pass, Diagnostic) so each
// analyzer in internal/lint is written exactly as it would be against the
// real API. If the dependency ever becomes available, the analyzers port by
// switching one import path; until then cmd/lint ships its own driver that
// speaks both a standalone package-pattern mode and the `go vet -vettool`
// unit-checker protocol.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static-analysis function and its metadata.
// The fields mirror golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:ignore <name> <reason>` suppression directives. It must be a
	// valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: one summary line, a blank line,
	// then detail. cmd/lint prints it from `lint help <name>`.
	Doc string

	// Run applies the analyzer to a single package and reports diagnostics
	// via pass.Report. The returned value is ignored by this driver (the
	// x/tools API uses it for inter-analyzer facts, which the determinism
	// suite does not need).
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer run with the parsed, type-checked view of a
// single package, mirroring golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer

	// Fset maps token positions to file locations for Files.
	Fset *token.FileSet

	// Files is the package's syntax: every parsed source file, in the
	// deterministic order the driver loaded them (sorted by file name).
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo carries the type-checker's results for Files: Types, Defs,
	// Uses, Selections, Implicits and Scopes are all populated.
	TypesInfo *types.Info

	// Report emits one diagnostic. The driver wraps it with the
	// `//lint:ignore` suppression filter, so analyzers call it
	// unconditionally.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, tied to a source position.
type Diagnostic struct {
	// Pos is the primary position of the finding.
	Pos token.Pos
	// End, when valid, is the end of the offending source range.
	End token.Pos
	// Message is the human-readable finding, ideally one line stating the
	// broken invariant and the fix.
	Message string
}
