package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"lvmajority/internal/lint/analysis"
)

// HotPath enforces the 0 allocs/event contract on regions annotated with a
// `//lint:hotpath` directive — the compiled kernels' inner loops
// (KernelBatch, KernelLockstep, the fused LV consensus loop, the
// incremental-propensity SSA step). The directive goes on a function's doc
// comment or on its own line directly above a for/range statement; inside
// the marked region the analyzer flags allocation-prone constructs:
//
//   - append (backing-array growth), make, new
//   - closure literals (captured variables escape)
//   - defer and go statements
//   - calls into fmt and reflect
//   - string concatenation (+ / += on strings)
//   - slice and map composite literals
//   - implicit or explicit conversion of a concrete value to an interface
//
// The committed benchmarks prove the kernels allocation-free today; this
// analyzer keeps that structural, so a regression fails vet before it
// fails the benchmark gate.
var HotPath = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "forbid allocation-prone constructs in //lint:hotpath regions\n\n" +
		"Mark a kernel function (doc comment) or inner loop (preceding\n" +
		"line) with //lint:hotpath; appends, closures, interface\n" +
		"conversions, fmt calls, string concatenation, defer, and other\n" +
		"allocation sources inside are diagnostics.",
	Run: runHotPath,
}

func runHotPath(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		// Hot loops: directives on the line directly above a statement.
		hotLines := make(map[int]bool)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if c.Text == hotpathDirective || (len(c.Text) > len(hotpathDirective) && c.Text[:len(hotpathDirective)+1] == hotpathDirective+" ") {
					hotLines[pass.Fset.Position(c.Pos()).Line] = true
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if directiveOn(n.Doc, hotpathDirective) {
					checkHotRegion(pass, n.Body)
					return false
				}
			case *ast.ForStmt, *ast.RangeStmt:
				if hotLines[pass.Fset.Position(n.Pos()).Line-1] {
					checkHotRegion(pass, n)
					return false
				}
			}
			return true
		})
	}
	return nil, nil
}

func checkHotRegion(pass *analysis.Pass, region ast.Node) {
	if region == nil {
		return
	}
	info := pass.TypesInfo
	ast.Inspect(region, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal in hot path: captured variables escape to the heap")
			return false
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in hot path: allocates and delays work to function exit")
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "goroutine launch in hot path")
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(), "slice or map literal in hot path allocates per event; hoist it out of the loop")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := info.TypeOf(n); t != nil && isString(t) {
					pass.Reportf(n.Pos(), "string concatenation in hot path allocates")
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN {
				if t := info.TypeOf(n.Lhs[0]); t != nil && isString(t) {
					pass.Reportf(n.Pos(), "string concatenation in hot path allocates")
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, n)
		}
		return true
	})
}

func checkHotCall(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	// Builtins and conversions.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, ok := info.Uses[fun].(*types.Builtin); ok {
			switch fun.Name {
			case "append":
				pass.Reportf(call.Pos(), "append in hot path: backing-array growth allocates; preallocate outside the loop")
				return
			case "make", "new":
				pass.Reportf(call.Pos(), "%s in hot path allocates; hoist it out of the loop", fun.Name)
				return
			}
		}
	case *ast.SelectorExpr:
		switch pkgPathOf(info, fun.X) {
		case "fmt", "reflect":
			pass.Reportf(call.Pos(), "call into %s in hot path allocates; move formatting out of the kernel", pkgPathOf(info, fun.X))
			return
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) {
			pass.Reportf(call.Pos(), "conversion to interface in hot path allocates")
		}
		return
	}
	// Implicit interface conversions at call arguments.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "argument converts %s to interface %s in hot path: the value escapes to the heap",
			types.TypeString(at, types.RelativeTo(pass.Pkg)), types.TypeString(pt, types.RelativeTo(pass.Pkg)))
	}
}
