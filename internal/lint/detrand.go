package lint

import (
	"go/ast"
	"strconv"

	"lvmajority/internal/lint/analysis"
)

// DetRand forbids non-deterministic sources inside engine packages: any use
// of math/rand or math/rand/v2 (including rand.Seed, the global functions,
// and the types — only replicate-keyed rng.NewStream may mint streams) and
// the wall-clock reads time.Now / time.Since / time.Until. Engine packages
// are the internal/{protocols,crn,lv,mc,sim,moran,gossip,spatial,consensus,
// sweep,rng,faultpoint,ioretry} subtrees — the code that runs inside
// replicated trials (including the fault-injection sites and retry
// backoffs), where any stray entropy or clock read breaks byte-identity
// across worker and lane counts.
var DetRand = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid math/rand and wall-clock reads in engine packages\n\n" +
		"Engine code must draw randomness only from the replicate-keyed\n" +
		"streams of internal/rng (rng.NewStream), so Monte-Carlo results\n" +
		"are byte-identical for every worker and lane count.",
	Run: runDetRand,
}

// mathRandPkgs are the import paths banned outright in engine scope.
var mathRandPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// wallClockFuncs are the time package functions that read the wall clock.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runDetRand(pass *analysis.Pass) (any, error) {
	if !inEngineScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if mathRandPkgs[path] {
				pass.Reportf(imp.Pos(), "engine package imports %s: draw randomness only from replicate-keyed rng.NewStream streams", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch path := pkgPathOf(pass.TypesInfo, sel.X); {
			case mathRandPkgs[path]:
				pass.Reportf(sel.Pos(), "use of %s.%s in an engine package: draw randomness only from replicate-keyed rng.NewStream streams", path, sel.Sel.Name)
			case path == "time" && wallClockFuncs[sel.Sel.Name]:
				pass.Reportf(sel.Pos(), "wall-clock read time.%s in an engine package: results must not depend on real time", sel.Sel.Name)
			}
			return true
		})
	}
	return nil, nil
}
