package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix is the suppression directive. The full form is
// `//lint:ignore <analyzer>[,<analyzer>...] <reason>`, written on the
// flagged line or on its own line directly above.
const ignorePrefix = "//lint:ignore"

// hotpathDirective marks a function or loop as an allocation-free hot
// region for the hotpath analyzer (see hotpath.go).
const hotpathDirective = "//lint:hotpath"

// ignoreIndex records well-formed suppressions by file and line.
type ignoreIndex map[string]map[int][]string // filename -> line -> analyzers

// suppressed reports whether a diagnostic from analyzer at pos is covered
// by a directive on the same line or the line above.
func (ix ignoreIndex) suppressed(analyzer string, pos token.Position) bool {
	lines := ix[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// parseDirectives scans every comment for //lint: directives, returning the
// suppression index and hygiene diagnostics for malformed ones: a bare
// //lint:ignore, one without a reason, one naming an unknown analyzer, or
// an unknown //lint: verb. Hygiene findings are reported under
// DirectiveAnalyzer and are themselves unsuppressable.
func parseDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) (ignoreIndex, []Diag) {
	ix := make(ignoreIndex)
	var hygiene []Diag
	report := func(pos token.Pos, msg string) {
		hygiene = append(hygiene, Diag{
			Position: fset.Position(pos),
			Analyzer: DirectiveAnalyzer,
			Message:  msg,
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, "//lint:") {
					continue
				}
				if text == hotpathDirective || strings.HasPrefix(text, hotpathDirective+" ") {
					continue // consumed by the hotpath analyzer
				}
				if !strings.HasPrefix(text, ignorePrefix) {
					verb := strings.TrimPrefix(text, "//lint:")
					if i := strings.IndexAny(verb, " \t"); i >= 0 {
						verb = verb[:i]
					}
					report(c.Pos(), "unknown //lint: directive "+verb+" (want ignore or hotpath)")
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
				if len(fields) == 0 {
					report(c.Pos(), "bare "+ignorePrefix+" directive: want //lint:ignore <analyzer> <reason>")
					continue
				}
				if len(fields) < 2 {
					report(c.Pos(), ignorePrefix+" "+fields[0]+" without a reason — every suppression must say why")
					continue
				}
				names := strings.Split(fields[0], ",")
				bad := false
				for _, name := range names {
					if !known[name] {
						report(c.Pos(), "unknown analyzer "+name+" in "+ignorePrefix+" directive")
						bad = true
					}
				}
				if bad {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := ix[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					ix[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], names...)
			}
		}
	}
	return ix, hygiene
}

// directiveOn reports whether the comment group carries the given //lint:
// directive (exactly, or followed by a note).
func directiveOn(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}
