// Package analysistest runs the lint suite over fixture packages and
// checks the reported diagnostics against `// want` expectation comments,
// in the style of golang.org/x/tools/go/analysis/analysistest (which the
// hermetic build cannot depend on — see internal/lint/analysis).
//
// Fixture packages live under a testdata root as src/<import-path>/*.go.
// An expectation is written on the line the diagnostic lands on:
//
//	names = append(names, name) // want `append inside map iteration`
//
// The backquoted (or double-quoted) text is a regular expression matched
// against the diagnostic message; one comment may carry several, one per
// expected diagnostic on that line. Every diagnostic must match an
// expectation and every expectation must be matched, so fixtures double as
// negative tests: a line without a `// want` asserts silence.
//
// Fixtures are type-checked against real gc export data obtained from
// `go list -deps -export`, so stdlib imports (context, fmt, time, ...)
// resolve exactly as they do under go vet.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"lvmajority/internal/lint"
	"lvmajority/internal/lint/analysis"
	"lvmajority/internal/lint/loader"
)

// Run analyzes each fixture package testdata/src/<pkgPath> with the given
// suite (through lint.RunPackage, so //lint:ignore suppression and
// directive hygiene apply exactly as in production) and reports every
// mismatch between diagnostics and `// want` comments as a test error.
func Run(t *testing.T, testdata string, suite []*analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, pkgPath := range pkgPaths {
		t.Run(filepath.Base(pkgPath), func(t *testing.T) {
			runPackage(t, testdata, suite, pkgPath)
		})
	}
}

func runPackage(t *testing.T, testdata string, suite []*analysis.Analyzer, pkgPath string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports[p] = true
			}
		}
	}
	if len(files) == 0 {
		t.Fatalf("no Go files in %s", dir)
	}

	exports, err := exportData(dir, imports)
	if err != nil {
		t.Fatal(err)
	}
	info := loader.NewInfo()
	conf := &types.Config{
		Importer: loader.ExportImporter(fset, nil, exports),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", pkgPath, err)
	}

	diags, err := lint.RunPackage(fset, files, pkg, info, suite)
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, fset, files)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Position.Filename, d.Position.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.rx.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", d.Position, d.Analyzer, d.Message)
		}
	}
	var keys []string
	for key := range wants {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		for _, w := range wants[key] {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", key, w.raw)
			}
		}
	}
}

// A want is one expectation: a regexp a diagnostic on its line must match.
type want struct {
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// wantPatternRE extracts the backquoted or double-quoted patterns following
// a "// want" marker.
var wantPatternRE = regexp.MustCompile("`([^`]*)`" + `|"((?:[^"\\]|\\.)*)"`)

// collectWants scans every comment for "// want" markers and indexes the
// expectations by "filename:line".
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				rest := c.Text[idx+len("// want "):]
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range wantPatternRE.FindAllStringSubmatch(rest, -1) {
					pattern := m[1]
					if pattern == "" {
						pattern = strings.ReplaceAll(m[2], `\"`, `"`)
					}
					rx, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pattern, err)
					}
					wants[key] = append(wants[key], &want{rx: rx, raw: pattern})
				}
			}
		}
	}
	return wants
}

// Export-data discovery is memoized across fixtures: most share the same
// handful of stdlib imports, and `go list` dominates the harness runtime.
var (
	exportMu    sync.Mutex
	exportFiles = make(map[string]string)
	exportSeen  = make(map[string]bool)
)

// exportData returns gc export-data files covering imports and their
// transitive dependencies, shelling out to `go list -deps -export` for any
// not yet seen. dir anchors the go invocation (any module directory works;
// fixtures resolve only stdlib imports).
func exportData(dir string, imports map[string]bool) (map[string]string, error) {
	exportMu.Lock()
	defer exportMu.Unlock()
	var missing []string
	for p := range imports {
		if !exportSeen[p] {
			missing = append(missing, p)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		args := append([]string{"list", "-e", "-deps", "-export", "-json=ImportPath,Export"}, missing...)
		cmd := exec.Command("go", args...)
		cmd.Dir = dir
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("analysistest: go list: %w\n%s", err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var lp struct{ ImportPath, Export string }
			if err := dec.Decode(&lp); err == io.EOF {
				break
			} else if err != nil {
				return nil, fmt.Errorf("analysistest: parsing go list output: %w", err)
			}
			exportSeen[lp.ImportPath] = true
			if lp.Export != "" {
				exportFiles[lp.ImportPath] = lp.Export
			}
		}
		for _, p := range missing {
			exportSeen[p] = true
		}
	}
	out := make(map[string]string, len(exportFiles))
	for k, v := range exportFiles {
		out[k] = v
	}
	return out, nil
}
