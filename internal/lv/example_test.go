package lv_test

import (
	"fmt"

	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
)

// ExampleRun simulates one self-destructive Lotka–Volterra chain to
// consensus and prints the paper's event accounting.
func ExampleRun() {
	params := lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)
	out, err := lv.Run(params, lv.State{X0: 60, X1: 40}, rng.New(42), lv.RunOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("consensus:", out.Consensus)
	fmt.Println("identity T = I + K:", out.Steps == out.Individual+out.Competitive)
	fmt.Println("noise identity F = gap0 - gapT:", out.FInd+out.FComp == 20-out.Final.Gap())
	// Output:
	// consensus: true
	// identity T = I + K: true
	// noise identity F = gap0 - gapT: true
}

// ExampleConsensusProbabilityExact evaluates the closed form of Theorems 20
// and 23.
func ExampleConsensusProbabilityExact() {
	fmt.Printf("%.4f\n", lv.ConsensusProbabilityExact(lv.State{X0: 3, X1: 1}))
	fmt.Printf("%.4f\n", lv.ConsensusProbabilityExact(lv.State{X0: 10, X1: 5}))
	// Output:
	// 0.7500
	// 0.6667
}

// ExampleParams_Validate shows parameter validation.
func ExampleParams_Validate() {
	bad := lv.Params{Beta: -1, Competition: lv.SelfDestructive}
	fmt.Println(bad.Validate() != nil)
	good := lv.Neutral(1, 1, 1, 0, lv.NonSelfDestructive)
	fmt.Println(good.Validate())
	// Output:
	// true
	// <nil>
}
