package lv

import (
	"fmt"

	"lvmajority/internal/crn"
)

// ToNetwork expresses the LV chain as a general chemical reaction network on
// species "X0" and "X1". The resulting network has identical propensities to
// the direct implementation in this package; the test suite uses it to
// cross-validate the fast sampler against the generic CRN engine.
func ToNetwork(p Params) (*crn.Network, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	net, err := crn.NewNetwork("X0", "X1")
	if err != nil {
		return nil, err
	}
	for i := crn.Species(0); i < 2; i++ {
		other := 1 - i
		label := fmt.Sprintf("%d", i)

		if err := net.AddReaction(crn.Reaction{
			Name:      "birth" + label,
			Reactants: []crn.Species{i},
			Products:  []crn.Species{i, i},
			Rate:      p.Beta,
		}); err != nil {
			return nil, err
		}
		if err := net.AddReaction(crn.Reaction{
			Name:      "death" + label,
			Reactants: []crn.Species{i},
			Rate:      p.Delta,
		}); err != nil {
			return nil, err
		}

		// Interspecific competition initiated by species i.
		inter := crn.Reaction{
			Name:      "inter" + label,
			Reactants: []crn.Species{i, other},
			Rate:      p.Alpha[i],
		}
		if p.Competition == NonSelfDestructive {
			inter.Products = []crn.Species{i}
		}
		if err := net.AddReaction(inter); err != nil {
			return nil, err
		}

		// Intraspecific competition within species i.
		intra := crn.Reaction{
			Name:      "intra" + label,
			Reactants: []crn.Species{i, i},
			Rate:      p.Gamma[i],
		}
		if p.Competition == NonSelfDestructive {
			intra.Products = []crn.Species{i}
		}
		if err := net.AddReaction(intra); err != nil {
			return nil, err
		}
	}
	return net, nil
}
