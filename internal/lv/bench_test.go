package lv

import (
	"testing"

	"lvmajority/internal/rng"
)

// BenchmarkRunSD measures a full self-destructive consensus run at n = 1000
// with the specialized direct sampler (the workhorse of every experiment).
func BenchmarkRunSD(b *testing.B) {
	params := Neutral(1, 1, 1, 0, SelfDestructive)
	src := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := Run(params, State{X0: 600, X1: 400}, src, RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if !out.Consensus {
			b.Fatal("no consensus")
		}
	}
}

// BenchmarkRunNSD is the non-self-destructive counterpart.
func BenchmarkRunNSD(b *testing.B) {
	params := Neutral(1, 1, 1, 0, NonSelfDestructive)
	src := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := Run(params, State{X0: 600, X1: 400}, src, RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if !out.Consensus {
			b.Fatal("no consensus")
		}
	}
}

// BenchmarkLVKernel measures the fused event kernel on full self-
// destructive consensus runs at n = 10⁴, reporting ns per event. The
// allocs/op column is the kernel's zero-allocation guarantee: entire
// replicated runs produce no garbage.
func BenchmarkLVKernel(b *testing.B) {
	params := Neutral(1, 1, 1, 0, SelfDestructive)
	src := rng.New(1)
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		out, err := Run(params, State{X0: 6000, X1: 4000}, src, RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if !out.Consensus {
			b.Fatal("no consensus")
		}
		events += int64(out.Steps)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
}

// BenchmarkStep measures single-step cost without the Run bookkeeping.
func BenchmarkStep(b *testing.B) {
	params := Neutral(1, 1, 1, 0, SelfDestructive)
	fresh := func(seed uint64) *Chain {
		chain, err := NewChain(params, State{X0: 1 << 20, X1: 1 << 20}, rng.New(seed))
		if err != nil {
			b.Fatal(err)
		}
		return chain
	}
	chain := fresh(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := chain.Step(); !ok {
			// Long benchmark runs exhaust the chain (double
			// extinction); restart outside the timer.
			b.StopTimer()
			chain = fresh(uint64(i))
			b.StartTimer()
		}
	}
}
