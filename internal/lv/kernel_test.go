package lv

import (
	"testing"

	"lvmajority/internal/rng"
)

// referenceRun replays the pre-fusion Run implementation: a NewChain +
// Step loop with the closure-based accounting. The fused kernel must match
// it field for field on the same random stream.
func referenceRun(t *testing.T, params Params, initial State, src *rng.Source, opts RunOptions) Outcome {
	t.Helper()
	chain, err := NewChain(params, initial, src)
	if err != nil {
		t.Fatal(err)
	}
	chain.SetTrackTime(opts.TrackTime)
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}

	out := Outcome{Winner: -1, MaxPopulation: initial.Total()}
	majority := 0
	if initial.X1 > initial.X0 {
		majority = 1
	}
	signedGap := func(s State) int {
		if majority == 0 {
			return s.X0 - s.X1
		}
		return s.X1 - s.X0
	}

	prev := chain.State()
	for !chain.State().Consensus() {
		if chain.Steps() >= maxSteps {
			out.Steps = chain.Steps()
			out.Final = chain.State()
			out.Time = chain.Time()
			return out
		}
		kind, ok := chain.Step()
		if !ok {
			out.Steps = chain.Steps()
			out.Final = chain.State()
			out.Time = chain.Time()
			return out
		}
		cur := chain.State()

		fStep := signedGap(prev) - signedGap(cur)
		if kind.IsIndividual() {
			out.Individual++
			out.FInd += fStep
			if prev.Min() > 0 && cur.AbsGap() == prev.AbsGap()-1 {
				out.BadNonCompetitive++
			}
		} else {
			out.Competitive++
			out.FComp += fStep
		}
		if cur.Total() > out.MaxPopulation {
			out.MaxPopulation = cur.Total()
		}
		if !cur.Consensus() && cur.X0 == cur.X1 {
			out.GapHitZero = true
		}
		prev = cur
	}

	out.Consensus = true
	out.Steps = chain.Steps()
	out.Final = chain.State()
	out.Time = chain.Time()
	out.Winner = out.Final.Winner()
	out.MajorityWon = out.Winner == majority
	return out
}

// TestFusedKernelByteIdenticalToStepLoop runs the fused Run kernel and the
// Step-loop reference from identical streams across every competition
// regime, time tracking mode, and a budget-bound chain, and demands
// Outcome equality in every field — the fused kernel must be invisible at
// the bit level.
func TestFusedKernelByteIdenticalToStepLoop(t *testing.T) {
	cases := []struct {
		name    string
		params  Params
		initial State
		opts    RunOptions
	}{
		{"SD", Neutral(1, 1, 1, 0, SelfDestructive), State{X0: 40, X1: 30}, RunOptions{}},
		{"NSD", Neutral(1, 1, 1, 0, NonSelfDestructive), State{X0: 40, X1: 30}, RunOptions{}},
		{"SD-intra", Neutral(1, 1, 0, 1, SelfDestructive), State{X0: 24, X1: 18}, RunOptions{}},
		{"NSD-both", Neutral(1, 1, 0.5, 0.5, NonSelfDestructive), State{X0: 30, X1: 20}, RunOptions{}},
		{"tracked-time", Neutral(1, 1, 1, 0, SelfDestructive), State{X0: 25, X1: 15}, RunOptions{TrackTime: true}},
		{"asymmetric", Params{Beta: 1, Delta: 0.5, Alpha: [2]float64{1, 0.8}, Gamma: [2]float64{0.2, 0.1}, Competition: NonSelfDestructive}, State{X0: 20, X1: 16}, RunOptions{}},
		{"budget-bound", Neutral(1, 1, 0, 0, SelfDestructive), State{X0: 10, X1: 10}, RunOptions{MaxSteps: 500}},
		{"tie-start", Neutral(1, 1, 1, 0, SelfDestructive), State{X0: 20, X1: 20}, RunOptions{}},
		{"minority-is-x0", Neutral(1, 1, 1, 0, SelfDestructive), State{X0: 15, X1: 25}, RunOptions{}},
		{"already-consensus", Neutral(1, 1, 1, 0, SelfDestructive), State{X0: 10, X1: 0}, RunOptions{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 25; seed++ {
				got, err := Run(tc.params, tc.initial, rng.New(seed), tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				want := referenceRun(t, tc.params, tc.initial, rng.New(seed), tc.opts)
				if got != want {
					t.Fatalf("seed %d: fused kernel diverged:\n got %+v\nwant %+v", seed, got, want)
				}
			}
		})
	}
}

// TestRunToConsensusReuse checks the exported reuse path: Reset +
// RunToConsensus on one chain must reproduce fresh Run calls exactly.
func TestRunToConsensusReuse(t *testing.T) {
	params := Neutral(1, 1, 1, 0, NonSelfDestructive)
	initial := State{X0: 30, X1: 22}
	chain, err := NewChain(params, initial, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 20; seed++ {
		if err := chain.Reset(initial, rng.New(seed)); err != nil {
			t.Fatal(err)
		}
		got := chain.RunToConsensus(0)
		want, err := Run(params, initial, rng.New(seed), RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("seed %d: reused chain diverged:\n got %+v\nwant %+v", seed, got, want)
		}
	}
}

// TestRunAllocationFree verifies the fused kernel's headline property: a
// whole consensus run performs zero heap allocations.
func TestRunAllocationFree(t *testing.T) {
	params := Neutral(1, 1, 1, 0, SelfDestructive)
	src := rng.New(7)
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := Run(params, State{X0: 40, X1: 30}, src, RunOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("lv.Run allocated %v times per call, want 0", allocs)
	}
}
