package lv

import (
	"math"
	"strings"
	"testing"
)

func TestCompetitionString(t *testing.T) {
	if got := SelfDestructive.String(); got != "self-destructive" {
		t.Errorf("got %q", got)
	}
	if got := NonSelfDestructive.String(); got != "non-self-destructive" {
		t.Errorf("got %q", got)
	}
	if got := Competition(0).String(); !strings.Contains(got, "0") {
		t.Errorf("unknown competition rendered as %q", got)
	}
}

func TestNeutral(t *testing.T) {
	p := Neutral(1, 2, 3, 4, SelfDestructive)
	if p.Beta != 1 || p.Delta != 2 {
		t.Errorf("beta/delta = %v/%v", p.Beta, p.Delta)
	}
	if p.Alpha != [2]float64{3, 3} || p.Gamma != [2]float64{4, 4} {
		t.Errorf("alpha/gamma = %v/%v", p.Alpha, p.Gamma)
	}
	if !p.IsNeutral() {
		t.Error("Neutral params not neutral")
	}
}

func TestParamsValidate(t *testing.T) {
	valid := Neutral(1, 1, 1, 0, SelfDestructive)
	if err := valid.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []Params{
		{Beta: -1, Competition: SelfDestructive},
		{Alpha: [2]float64{-0.5, 1}, Competition: SelfDestructive},
		{Gamma: [2]float64{0, math.NaN()}, Competition: NonSelfDestructive},
		{Beta: 1}, // missing competition model
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestParamsDerived(t *testing.T) {
	p := Params{
		Beta: 1.5, Delta: 0.5,
		Alpha:       [2]float64{2, 3},
		Gamma:       [2]float64{0.5, 1},
		Competition: NonSelfDestructive,
	}
	if got := p.Theta(); got != 2 {
		t.Errorf("Theta = %v, want 2", got)
	}
	if got := p.AlphaSum(); got != 5 {
		t.Errorf("AlphaSum = %v, want 5", got)
	}
	if got := p.AlphaMin(); got != 2 {
		t.Errorf("AlphaMin = %v, want 2", got)
	}
	if got := p.GammaSum(); got != 1.5 {
		t.Errorf("GammaSum = %v, want 1.5", got)
	}
	if p.IsNeutral() {
		t.Error("asymmetric params reported neutral")
	}
}

func TestStateHelpers(t *testing.T) {
	s := State{X0: 7, X1: 3}
	if s.Total() != 10 || s.Gap() != 4 || s.AbsGap() != 4 || s.Min() != 3 {
		t.Errorf("helpers wrong for %+v", s)
	}
	r := State{X0: 3, X1: 7}
	if r.Gap() != -4 || r.AbsGap() != 4 {
		t.Errorf("gap helpers wrong for %+v", r)
	}
	if s.Consensus() {
		t.Error("non-consensus state reported consensus")
	}
	if err := (State{X0: -1}).Validate(); err == nil {
		t.Error("negative state accepted")
	}
}

func TestStateWinner(t *testing.T) {
	cases := []struct {
		s    State
		want int
	}{
		{State{5, 0}, 0},
		{State{0, 5}, 1},
		{State{0, 0}, -1},
		{State{3, 3}, -1},
	}
	for _, tc := range cases {
		if got := tc.s.Winner(); got != tc.want {
			t.Errorf("Winner(%+v) = %d, want %d", tc.s, got, tc.want)
		}
	}
}

func TestConsensusProbabilityExact(t *testing.T) {
	if got := ConsensusProbabilityExact(State{X0: 3, X1: 1}); got != 0.75 {
		t.Errorf("got %v, want 0.75", got)
	}
	// Orientation-independent.
	if got := ConsensusProbabilityExact(State{X0: 1, X1: 3}); got != 0.75 {
		t.Errorf("got %v, want 0.75", got)
	}
	if got := ConsensusProbabilityExact(State{}); got != 0 {
		t.Errorf("got %v for empty state, want 0", got)
	}
}

func TestExpectedDeterministicWinner(t *testing.T) {
	if got := ExpectedDeterministicWinner(State{5, 3}); got != 0 {
		t.Errorf("got %d, want 0", got)
	}
	if got := ExpectedDeterministicWinner(State{3, 5}); got != 1 {
		t.Errorf("got %d, want 1", got)
	}
	if got := ExpectedDeterministicWinner(State{4, 4}); got != -1 {
		t.Errorf("got %d, want -1", got)
	}
}
