package lv

import (
	"testing"

	"lvmajority/internal/rng"
)

// FuzzPropensities checks that for arbitrary non-negative rates and counts,
// every channel propensity is non-negative and the total matches the
// paper's φ formula.
func FuzzPropensities(f *testing.F) {
	f.Add(uint8(16), uint8(16), uint8(16), uint8(16), uint16(10), uint16(5), true)
	f.Add(uint8(0), uint8(0), uint8(1), uint8(0), uint16(1), uint16(1), false)
	f.Fuzz(func(t *testing.T, beta, delta, alpha, gamma uint8, x0, x1 uint16, sd bool) {
		comp := NonSelfDestructive
		if sd {
			comp = SelfDestructive
		}
		p := Params{
			Beta:        float64(beta) / 16,
			Delta:       float64(delta) / 16,
			Alpha:       [2]float64{float64(alpha) / 16, float64(alpha) / 8},
			Gamma:       [2]float64{float64(gamma) / 16, float64(gamma) / 32},
			Competition: comp,
		}
		s := State{X0: int(x0 % 2000), X1: int(x1 % 2000)}
		props, total := PropensitiesFor(p, s)
		var sum float64
		for k, v := range props {
			if v < 0 {
				t.Fatalf("negative propensity %v for channel %v in %+v", v, EventKind(k), s)
			}
			sum += v
		}
		if diff := sum - total; diff > 1e-9*(1+sum) || diff < -1e-9*(1+sum) {
			t.Fatalf("total %v != sum %v", total, sum)
		}
		fx0, fx1 := float64(s.X0), float64(s.X1)
		phi := (p.Beta+p.Delta)*(fx0+fx1) +
			(p.Alpha[0]+p.Alpha[1])*fx0*fx1 +
			p.Gamma[0]*fx0*(fx0-1)/2 + p.Gamma[1]*fx1*(fx1-1)/2
		if diff := total - phi; diff > 1e-6*(1+phi) || diff < -1e-6*(1+phi) {
			t.Fatalf("total %v != phi %v", total, phi)
		}
	})
}

// FuzzRunInvariants runs short chains from fuzzed configurations and checks
// the structural invariants of the outcome accounting.
func FuzzRunInvariants(f *testing.F) {
	f.Add(uint64(1), uint8(30), uint8(20), true)
	f.Add(uint64(7), uint8(1), uint8(1), false)
	f.Fuzz(func(t *testing.T, seed uint64, a, b uint8, sd bool) {
		comp := NonSelfDestructive
		if sd {
			comp = SelfDestructive
		}
		p := Neutral(1, 1, 1, 0.25, comp)
		initial := State{X0: int(a % 60), X1: int(b % 60)}
		out, err := Run(p, initial, rng.New(seed), RunOptions{MaxSteps: 20000})
		if err != nil {
			t.Fatal(err)
		}
		if out.Steps != out.Individual+out.Competitive {
			t.Fatalf("T != I + K: %+v", out)
		}
		if out.BadNonCompetitive > out.Individual {
			t.Fatalf("J > I: %+v", out)
		}
		if out.Final.X0 < 0 || out.Final.X1 < 0 {
			t.Fatalf("negative final state: %+v", out.Final)
		}
		if out.MaxPopulation < initial.Total() {
			t.Fatalf("max population below initial: %+v", out)
		}
		if out.Consensus && !out.Final.Consensus() {
			t.Fatalf("consensus flag with non-consensus state: %+v", out)
		}
	})
}
