package lv

import (
	"math"
	"testing"
	"testing/quick"

	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

func TestNewChainValidation(t *testing.T) {
	params := Neutral(1, 1, 1, 0, SelfDestructive)
	if _, err := NewChain(params, State{X0: -1}, rng.New(1)); err == nil {
		t.Error("negative state accepted")
	}
	if _, err := NewChain(Params{Beta: -1, Competition: SelfDestructive}, State{1, 1}, rng.New(1)); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := NewChain(params, State{1, 1}, nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestPropensitiesMatchPaperPhi(t *testing.T) {
	p := Params{
		Beta: 1.25, Delta: 0.75,
		Alpha:       [2]float64{0.5, 1.5},
		Gamma:       [2]float64{0.25, 2},
		Competition: SelfDestructive,
	}
	chain, err := NewChain(p, State{X0: 7, X1: 4}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	props, total := chain.Propensities()
	x0, x1 := 7.0, 4.0
	want := map[EventKind]float64{
		Birth0: 1.25 * x0,
		Birth1: 1.25 * x1,
		Death0: 0.75 * x0,
		Death1: 0.75 * x1,
		Inter0: 0.5 * x0 * x1,
		Inter1: 1.5 * x0 * x1,
		Intra0: 0.25 * x0 * (x0 - 1) / 2,
		Intra1: 2 * x1 * (x1 - 1) / 2,
	}
	var wantTotal float64
	for k, w := range want {
		if got := props[k]; math.Abs(got-w) > 1e-12 {
			t.Errorf("propensity(%v) = %v, want %v", k, got, w)
		}
		wantTotal += w
	}
	if math.Abs(total-wantTotal) > 1e-9 {
		t.Errorf("total = %v, want %v", total, wantTotal)
	}
}

func TestApplyEffects(t *testing.T) {
	sd := Neutral(1, 1, 1, 1, SelfDestructive)
	nsd := Neutral(1, 1, 1, 1, NonSelfDestructive)
	start := State{X0: 5, X1: 3}
	cases := []struct {
		name string
		p    Params
		k    EventKind
		want State
	}{
		{"birth0", sd, Birth0, State{6, 3}},
		{"birth1", sd, Birth1, State{5, 4}},
		{"death0", sd, Death0, State{4, 3}},
		{"death1", sd, Death1, State{5, 2}},
		{"sd inter0", sd, Inter0, State{4, 2}},
		{"sd inter1", sd, Inter1, State{4, 2}},
		{"sd intra0", sd, Intra0, State{3, 3}},
		{"sd intra1", sd, Intra1, State{5, 1}},
		{"nsd inter0 kills 1", nsd, Inter0, State{5, 2}},
		{"nsd inter1 kills 0", nsd, Inter1, State{4, 3}},
		{"nsd intra0", nsd, Intra0, State{4, 3}},
		{"nsd intra1", nsd, Intra1, State{5, 2}},
	}
	for _, tc := range cases {
		if got := apply(tc.p, start, tc.k); got != tc.want {
			t.Errorf("%s: got %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

func TestSDInterLeavesGapUnchanged(t *testing.T) {
	p := Neutral(0, 0, 1, 0, SelfDestructive)
	s := State{X0: 9, X1: 4}
	next := apply(p, s, Inter0)
	if next.Gap() != s.Gap() {
		t.Errorf("SD interspecific event changed the gap: %d -> %d", s.Gap(), next.Gap())
	}
}

func TestStepAbsorbed(t *testing.T) {
	p := Neutral(0, 1, 1, 0, SelfDestructive)
	chain, err := NewChain(p, State{0, 0}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := chain.Step(); ok {
		t.Error("Step on (0,0) reported progress")
	}
}

func TestRunReachesConsensus(t *testing.T) {
	p := Neutral(1, 1, 1, 0, SelfDestructive)
	out, err := Run(p, State{X0: 60, X1: 40}, rng.New(17), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Consensus {
		t.Fatal("no consensus reached")
	}
	if !out.Final.Consensus() {
		t.Errorf("final state %+v is not a consensus state", out.Final)
	}
	if out.Steps != out.Individual+out.Competitive {
		t.Errorf("T != I + K: %d != %d + %d", out.Steps, out.Individual, out.Competitive)
	}
	if out.BadNonCompetitive > out.Individual {
		t.Errorf("J > I: %d > %d", out.BadNonCompetitive, out.Individual)
	}
	if out.MaxPopulation < 100 {
		t.Errorf("MaxPopulation = %d below initial total", out.MaxPopulation)
	}
}

func TestRunNoiseIdentity(t *testing.T) {
	// F_ind + F_comp must equal Δ₀ − Δ_T measured w.r.t. the initial
	// majority, for every run and parameterization.
	cfgs := []Params{
		Neutral(1, 1, 1, 0, SelfDestructive),
		Neutral(1, 1, 1, 0, NonSelfDestructive),
		Neutral(0.5, 0.1, 2, 0.5, SelfDestructive),
		Neutral(2, 1, 0.5, 1, NonSelfDestructive),
	}
	src := rng.New(23)
	for _, p := range cfgs {
		for trial := 0; trial < 50; trial++ {
			initial := State{X0: 30 + src.Intn(20), X1: 10 + src.Intn(15)}
			out, err := Run(p, initial, src, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !out.Consensus {
				t.Fatalf("%v: no consensus from %+v", p, initial)
			}
			gap0 := initial.X0 - initial.X1
			gapT := out.Final.X0 - out.Final.X1
			if got, want := out.FInd+out.FComp, gap0-gapT; got != want {
				t.Errorf("%v from %+v: F = %d, want Δ0−ΔT = %d", p, initial, got, want)
			}
		}
	}
}

func TestRunSelfDestructiveFCompZero(t *testing.T) {
	// Under SD interspecific-only competition, competitive events cannot
	// change the gap, so F_comp = 0 always (§6).
	p := Neutral(1, 1, 1, 0, SelfDestructive)
	src := rng.New(29)
	for trial := 0; trial < 100; trial++ {
		out, err := Run(p, State{X0: 50, X1: 30}, src, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if out.FComp != 0 {
			t.Fatalf("F_comp = %d under SD interspecific-only competition", out.FComp)
		}
	}
}

func TestRunMinorityOrientation(t *testing.T) {
	// The accounting must work when species 1 is the initial majority.
	p := Neutral(1, 1, 1, 0, SelfDestructive)
	src := rng.New(31)
	wins := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		out, err := Run(p, State{X0: 10, X1: 90}, src, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Consensus {
			t.Fatal("no consensus")
		}
		if out.MajorityWon {
			if out.Winner != 1 {
				t.Fatalf("MajorityWon but winner = %d", out.Winner)
			}
			wins++
		}
	}
	if wins < trials*8/10 {
		t.Errorf("initial majority (species 1) won only %d/%d", wins, trials)
	}
}

func TestRunDoubleExtinction(t *testing.T) {
	// SD interspecific competition from (1, 1) always ends in (0, 0) when
	// only competition is active.
	p := Neutral(0, 0, 1, 0, SelfDestructive)
	out, err := Run(p, State{1, 1}, rng.New(37), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Consensus || out.Winner != -1 || out.MajorityWon {
		t.Errorf("outcome = %+v, want double extinction", out)
	}
	if out.Final != (State{0, 0}) {
		t.Errorf("final = %+v, want (0,0)", out.Final)
	}
}

func TestRunMaxStepsBudget(t *testing.T) {
	// Supercritical birth-only chain never reaches consensus; the budget
	// must stop it.
	p := Neutral(1, 0, 0, 0, SelfDestructive)
	out, err := Run(p, State{5, 5}, rng.New(41), RunOptions{MaxSteps: 200})
	if err != nil {
		t.Fatal(err)
	}
	if out.Consensus {
		t.Error("birth-only chain claimed consensus")
	}
	if out.Steps != 200 {
		t.Errorf("steps = %d, want 200", out.Steps)
	}
}

func TestRunAllRatesZero(t *testing.T) {
	p := Neutral(0, 0, 0, 0, SelfDestructive)
	out, err := Run(p, State{3, 2}, rng.New(1), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Consensus || out.Steps != 0 {
		t.Errorf("outcome = %+v, want stuck chain", out)
	}
}

func TestRunTrackTime(t *testing.T) {
	p := Neutral(1, 1, 1, 0, SelfDestructive)
	out, err := Run(p, State{20, 10}, rng.New(43), RunOptions{TrackTime: true})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Consensus || out.Time <= 0 {
		t.Errorf("outcome = %+v, want positive consensus time", out)
	}
	// Without tracking, time stays zero.
	out2, err := Run(p, State{20, 10}, rng.New(43), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out2.Time != 0 {
		t.Errorf("untracked time = %v, want 0", out2.Time)
	}
}

func TestRunGapHitZeroFromTie(t *testing.T) {
	// Starting tied with positive counts and at least one more step
	// before consensus, GapHitZero must not trigger for the start state
	// itself but must trigger if the chain returns to a tie.
	p := Neutral(1, 1, 1, 0, SelfDestructive)
	src := rng.New(47)
	sawHit := false
	for i := 0; i < 200; i++ {
		out, err := Run(p, State{20, 18}, src, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if out.GapHitZero {
			sawHit = true
		}
	}
	if !sawHit {
		t.Error("chain from (20,18) never revisited a tied state in 200 runs; suspicious")
	}
}

func TestRunCountsStayNonNegativeProperty(t *testing.T) {
	// Pathwise invariant: no state ever has negative counts; verified by
	// stepping manually across random parameterizations.
	err := quick.Check(func(seed uint64, a, b uint8, sd bool) bool {
		comp := SelfDestructive
		if !sd {
			comp = NonSelfDestructive
		}
		p := Neutral(1, 0.5, 1, 0.5, comp)
		chain, err := NewChain(p, State{X0: int(a%40) + 1, X1: int(b%40) + 1}, rng.New(seed))
		if err != nil {
			return false
		}
		for i := 0; i < 2000; i++ {
			_, ok := chain.Step()
			if !ok {
				break
			}
			s := chain.State()
			if s.X0 < 0 || s.X1 < 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

func TestNeutralSymmetry(t *testing.T) {
	// For a neutral chain from (a, a), each species wins with equal
	// probability (Lemma 15's underlying symmetry).
	p := Neutral(1, 1, 1, 0, NonSelfDestructive)
	src := rng.New(53)
	const trials = 4000
	wins0 := 0
	decided := 0
	for i := 0; i < trials; i++ {
		out, err := Run(p, State{25, 25}, src, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if out.Winner == 0 {
			wins0++
		}
		if out.Winner >= 0 {
			decided++
		}
	}
	est, err := stats.WilsonInterval(wins0, decided, stats.Z999)
	if err != nil {
		t.Fatal(err)
	}
	if est.Lo > 0.5 || est.Hi < 0.5 {
		t.Errorf("species 0 win rate = %v, CI does not contain 0.5", est)
	}
}

func TestEventKindHelpers(t *testing.T) {
	individual := []EventKind{Birth0, Birth1, Death0, Death1}
	competitive := []EventKind{Inter0, Inter1, Intra0, Intra1}
	for _, k := range individual {
		if !k.IsIndividual() || k.IsCompetitive() {
			t.Errorf("%v misclassified", k)
		}
	}
	for _, k := range competitive {
		if k.IsIndividual() || !k.IsCompetitive() {
			t.Errorf("%v misclassified", k)
		}
	}
	if Birth0.String() != "birth0" || Intra1.String() != "intra1" {
		t.Error("EventKind names wrong")
	}
}
