package lv

import (
	"math"
	"testing"

	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

// TestLogisticRegimeCarryingCapacity validates the §1.7 claim that with
// intraspecific competition (γ > 0) the stochastic LV model exhibits the
// logistic growth regime: after competitive exclusion, the surviving
// species fluctuates around the carrying capacity. For a single species
// under NSD intraspecific competition (birth βx, death δx + γx(x−1)/2) the
// deterministic balance gives x* ≈ 2(β−δ)/γ + 1.
func TestLogisticRegimeCarryingCapacity(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const (
		beta  = 2.0
		delta = 1.0
		gamma = 0.02
	)
	want := 2*(beta-delta)/gamma + 1 // = 101
	params := Params{
		Beta: beta, Delta: delta,
		Gamma:       [2]float64{gamma, gamma},
		Competition: NonSelfDestructive,
	}
	chain, err := NewChain(params, State{X0: 10, X1: 0}, rng.New(404))
	if err != nil {
		t.Fatal(err)
	}
	// Warm up into the stationary regime, then time-average.
	for i := 0; i < 20000; i++ {
		if _, ok := chain.Step(); !ok {
			t.Fatal("population went extinct during warm-up; rates too harsh for the test")
		}
	}
	var acc stats.Running
	for i := 0; i < 200000; i++ {
		if _, ok := chain.Step(); !ok {
			t.Fatal("population went extinct during sampling")
		}
		acc.Add(float64(chain.State().X0))
	}
	if math.Abs(acc.Mean()-want)/want > 0.15 {
		t.Errorf("long-run population %v, want near carrying capacity %v", acc.Mean(), want)
	}
	// The population must be regulated: max far below what exponential
	// growth would reach in this many events.
	if acc.Max() > 4*want {
		t.Errorf("population reached %v, not regulated around %v", acc.Max(), want)
	}
}

// TestLogisticRegimeAfterExclusion runs the full two-species chain with
// γ > 0 past consensus and checks the survivor stays regulated (the paper:
// "the stochastic LV models exhibit the full logistic growth regime usually
// observed for microbial populations even after competitive exclusion").
func TestLogisticRegimeAfterExclusion(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	params := Params{
		Beta: 2, Delta: 1,
		Alpha:       [2]float64{0.01, 0.01},
		Gamma:       [2]float64{0.02, 0.02},
		Competition: NonSelfDestructive,
	}
	chain, err := NewChain(params, State{X0: 60, X1: 40}, rng.New(405))
	if err != nil {
		t.Fatal(err)
	}
	// Run to consensus.
	for !chain.State().Consensus() {
		if _, ok := chain.Step(); !ok {
			break
		}
		if chain.Steps() > 10_000_000 {
			t.Fatal("no consensus reached")
		}
	}
	if chain.State().Total() == 0 {
		t.Skip("double extinction in this run; regulation unobservable")
	}
	// Continue: the survivor must stay within a regulated band.
	maxSeen := 0
	for i := 0; i < 100000; i++ {
		if _, ok := chain.Step(); !ok {
			t.Fatal("survivor went extinct unexpectedly fast")
		}
		if tot := chain.State().Total(); tot > maxSeen {
			maxSeen = tot
		}
	}
	capacity := 2*(params.Beta-params.Delta)/params.Gamma[0] + 1
	if float64(maxSeen) > 4*capacity {
		t.Errorf("post-exclusion population reached %d, want regulated near %v", maxSeen, capacity)
	}
}
