package lv

import (
	"testing"

	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

// estimateMajorityWin runs trials of the chain and returns the Wilson
// estimate of Pr[initial majority wins].
func estimateMajorityWin(t *testing.T, p Params, initial State, trials int, seed uint64) stats.BernoulliEstimate {
	t.Helper()
	src := rng.New(seed)
	wins := 0
	for i := 0; i < trials; i++ {
		out, err := Run(p, initial, src, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Consensus {
			t.Fatalf("no consensus for %v from %+v", p, initial)
		}
		if out.MajorityWon {
			wins++
		}
	}
	est, err := stats.WilsonInterval(wins, trials, stats.Z999)
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// estimateMajorityWinTieAdjusted is estimateMajorityWin with SD double
// extinctions (final state (0,0)) counted as half a win for each species.
// Under this tiebreak the exact solution ρ(a,b) = a/(a+b) of Theorems 20
// and 23 holds at every state; under the paper's strict definition
// (majority must have positive count at T(S)) the (1,1) → (0,0) transition
// of self-destructive competition shaves a visible amount off ρ — see the
// T1-BOTH and E-EXACT records in the generated EXPERIMENTS.md. We
// verified both readings against an independent
// value-iteration solution of the first-step recurrence.
func estimateMajorityWinTieAdjusted(t *testing.T, p Params, initial State, trials int, seed uint64) stats.BernoulliEstimate {
	t.Helper()
	src := rng.New(seed)
	// Work in half-units so ties add exactly 1 of 2.
	halves := 0
	for i := 0; i < trials; i++ {
		out, err := Run(p, initial, src, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Consensus {
			t.Fatalf("no consensus for %v from %+v", p, initial)
		}
		switch {
		case out.MajorityWon:
			halves += 2
		case out.Winner == -1:
			halves++
		}
	}
	est, err := stats.WilsonInterval(halves, 2*trials, stats.Z999)
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func TestTheorem20ExactProbabilitySD(t *testing.T) {
	// SD with α = γ: ρ(a, b) = a/(a+b) exactly (Theorem 20). The paper's
	// α is the total interspecific constant (propensity α·a·b), which in
	// our parameterization is Alpha[0]+Alpha[1]; its γ multiplies
	// x(x−1)/2 per species, i.e. our Gamma[i]. So α = γ means
	// AlphaSum = Gamma[i].
	if testing.Short() {
		t.Skip("statistical test")
	}
	p := Params{
		Beta: 1, Delta: 1,
		Alpha:       [2]float64{0.5, 0.5}, // α = 1
		Gamma:       [2]float64{1, 1},     // γ = 1 = α
		Competition: SelfDestructive,
	}
	cases := []State{
		{X0: 3, X1: 1},
		{X0: 10, X1: 5},
		{X0: 24, X1: 8},
	}
	for _, initial := range cases {
		want := ConsensusProbabilityExact(initial)
		est := estimateMajorityWinTieAdjusted(t, p, initial, 20000, 61)
		if est.Lo > want || est.Hi < want {
			t.Errorf("SD α=γ from %+v: ρ̂ = %v, exact %v outside CI", initial, est, want)
		}
		// The strict (paper-definition) probability must sit strictly
		// below a/(a+b) because of (1,1) → (0,0) double extinctions.
		strict := estimateMajorityWin(t, p, initial, 20000, 62)
		if strict.Lo >= want {
			t.Errorf("SD α=γ from %+v: strict ρ̂ = %v not below exact tie-adjusted %v", initial, strict, want)
		}
	}
}

func TestTheorem23ExactProbabilityNSD(t *testing.T) {
	// NSD with γ = 2α: ρ(a, b) = a/(a+b) exactly (Theorem 23).
	if testing.Short() {
		t.Skip("statistical test")
	}
	p := Params{
		Beta: 1, Delta: 1,
		Alpha:       [2]float64{0.5, 0.5}, // α = 1
		Gamma:       [2]float64{1, 1},     // γ = 2 = 2α
		Competition: NonSelfDestructive,
	}
	cases := []State{
		{X0: 3, X1: 1},
		{X0: 12, X1: 6},
	}
	for _, initial := range cases {
		want := ConsensusProbabilityExact(initial)
		est := estimateMajorityWin(t, p, initial, 20000, 67)
		if est.Lo > want || est.Hi < want {
			t.Errorf("NSD γ=2α from %+v: ρ̂ = %v, exact %v outside CI", initial, est, want)
		}
	}
}

func TestNoCompetitionExactProbability(t *testing.T) {
	// α = γ = 0 with β = δ: two independent critical birth-death chains;
	// ρ(a, b) = a/(a+b) (prior work, Table 1 last row).
	if testing.Short() {
		t.Skip("statistical test")
	}
	p := Neutral(1, 1, 0, 0, SelfDestructive)
	initial := State{X0: 9, X1: 3}
	want := ConsensusProbabilityExact(initial)
	est := estimateMajorityWin(t, p, initial, 20000, 71)
	if est.Lo > want || est.Hi < want {
		t.Errorf("no-competition from %+v: ρ̂ = %v, exact %v outside CI", initial, est, want)
	}
}

func TestTheorem13ConsensusTimeLinear(t *testing.T) {
	// T(S) = O(n) in expectation for γ = 0, α_min > 0 (Theorem 13a): the
	// per-n means should grow at most linearly with a stable ratio.
	if testing.Short() {
		t.Skip("statistical test")
	}
	p := Neutral(1, 1, 1, 0, SelfDestructive)
	src := rng.New(73)
	var ratios []float64
	for _, n := range []int{128, 512, 2048} {
		var acc stats.Running
		for i := 0; i < 300; i++ {
			out, err := Run(p, State{X0: n * 3 / 4, X1: n / 4}, src, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			acc.Add(float64(out.Steps))
		}
		ratios = append(ratios, acc.Mean()/float64(n))
	}
	for i := 1; i < len(ratios); i++ {
		if ratios[i] > 2*ratios[0] {
			t.Errorf("T(S)/n growing superlinearly: %v", ratios)
		}
	}
}

func TestTheorem13BadEventsLogarithmic(t *testing.T) {
	// J(S) = O(log n) in expectation (Theorem 13b).
	if testing.Short() {
		t.Skip("statistical test")
	}
	p := Neutral(1, 1, 1, 0, SelfDestructive)
	src := rng.New(79)
	var ratios []float64
	for _, n := range []int{128, 512, 2048, 8192} {
		var acc stats.Running
		for i := 0; i < 200; i++ {
			out, err := Run(p, State{X0: n / 2, X1: n / 2}, src, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			acc.Add(float64(out.BadNonCompetitive))
		}
		ratios = append(ratios, acc.Mean()/stats.HarmonicNumber(n))
	}
	for i := 1; i < len(ratios); i++ {
		if ratios[i] > 2.5*ratios[0]+1 {
			t.Errorf("J(S)/H_n growing: %v", ratios)
		}
	}
}

func TestCrossValidationAgainstCRN(t *testing.T) {
	// The fast direct sampler and the generic CRN engine implement the
	// same jump chain; their majority-win probabilities must agree.
	if testing.Short() {
		t.Skip("statistical test")
	}
	p := Neutral(1, 0.5, 1, 0.5, NonSelfDestructive)
	initial := State{X0: 14, X1: 7}
	const trials = 8000

	direct := estimateMajorityWin(t, p, initial, trials, 83)

	net, err := ToNetwork(p)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(89)
	wins := 0
	for i := 0; i < trials; i++ {
		sim, err := newCRNSim(net, initial, src)
		if err != nil {
			t.Fatal(err)
		}
		winner, err := runCRNToConsensus(sim)
		if err != nil {
			t.Fatal(err)
		}
		if winner == 0 {
			wins++
		}
	}
	viaCRN, err := stats.WilsonInterval(wins, trials, stats.Z999)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Lo > viaCRN.Hi || viaCRN.Lo > direct.Hi {
		t.Errorf("direct %v and CRN %v estimates disagree", direct, viaCRN)
	}
}
