// Package lv implements the paper's central objects: discrete, stochastic
// two-species competitive Lotka–Volterra chains (models (1) and (2) of
// §1.3) under self-destructive and non-self-destructive interference
// competition, with the full event accounting used by the analysis —
// consensus time T(S), individual events I(S), competitive events K(S),
// bad non-competitive events J(S), and the demographic-noise decomposition
// F = F_ind + F_comp of §1.5.
package lv

import "fmt"

// Competition selects between the two interference-competition models of the
// paper.
type Competition int

const (
	// SelfDestructive is model (1): a competitive encounter removes both
	// participants (Xi + X(1−i) → ∅ and Xi + Xi → ∅).
	SelfDestructive Competition = iota + 1
	// NonSelfDestructive is model (2): a competitive encounter removes
	// only the victim (Xi + X(1−i) → Xi and Xi + Xi → Xi).
	NonSelfDestructive
)

// String returns the competition-model name.
func (c Competition) String() string {
	switch c {
	case SelfDestructive:
		return "self-destructive"
	case NonSelfDestructive:
		return "non-self-destructive"
	default:
		return fmt.Sprintf("Competition(%d)", int(c))
	}
}

// Params are the rate constants of a two-species LV chain. Species are
// indexed 0 and 1; by the paper's convention species 0 is the initial
// majority.
type Params struct {
	// Beta is the per-capita birth rate β (reaction Xi → Xi + Xi).
	Beta float64
	// Delta is the per-capita death rate δ (reaction Xi → ∅).
	Delta float64
	// Alpha holds the interspecific competition rates α₀, α₁; Alpha[i] is
	// the rate at which individuals of species i encounter (and under
	// NSD kill, under SD mutually annihilate with) individuals of the
	// other species.
	Alpha [2]float64
	// Gamma holds the intraspecific competition rates γ₀, γ₁.
	Gamma [2]float64
	// Competition selects self-destructive or non-self-destructive
	// encounters.
	Competition Competition
}

// Neutral returns parameters for a neutral community (identical species) with
// per-species interspecific rate alpha and intraspecific rate gamma.
func Neutral(beta, delta, alpha, gamma float64, c Competition) Params {
	return Params{
		Beta:        beta,
		Delta:       delta,
		Alpha:       [2]float64{alpha, alpha},
		Gamma:       [2]float64{gamma, gamma},
		Competition: c,
	}
}

// Validate reports whether the parameters define a well-formed chain:
// non-negative finite rates and a known competition model.
func (p Params) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"beta", p.Beta}, {"delta", p.Delta},
		{"alpha0", p.Alpha[0]}, {"alpha1", p.Alpha[1]},
		{"gamma0", p.Gamma[0]}, {"gamma1", p.Gamma[1]},
	}
	for _, r := range rates {
		if r.v < 0 {
			return fmt.Errorf("lv: negative rate %s=%v", r.name, r.v)
		}
		if r.v != r.v || r.v > 1e300 {
			return fmt.Errorf("lv: non-finite rate %s", r.name)
		}
	}
	if p.Competition != SelfDestructive && p.Competition != NonSelfDestructive {
		return fmt.Errorf("lv: unknown competition model %d", p.Competition)
	}
	return nil
}

// Theta returns ϑ = β + δ, the total individual-event rate constant.
func (p Params) Theta() float64 { return p.Beta + p.Delta }

// AlphaSum returns α = α₀ + α₁.
func (p Params) AlphaSum() float64 { return p.Alpha[0] + p.Alpha[1] }

// AlphaMin returns α_min = min(α₀, α₁).
func (p Params) AlphaMin() float64 { return min(p.Alpha[0], p.Alpha[1]) }

// GammaSum returns γ = γ₀ + γ₁.
func (p Params) GammaSum() float64 { return p.Gamma[0] + p.Gamma[1] }

// IsNeutral reports whether both species have identical rate parameters.
func (p Params) IsNeutral() bool {
	return p.Alpha[0] == p.Alpha[1] && p.Gamma[0] == p.Gamma[1]
}

// String renders the parameters compactly.
func (p Params) String() string {
	return fmt.Sprintf("lv(%s, beta=%g delta=%g alpha=[%g %g] gamma=[%g %g])",
		p.Competition, p.Beta, p.Delta, p.Alpha[0], p.Alpha[1], p.Gamma[0], p.Gamma[1])
}

// State is a configuration (x₀, x₁) of the two-species chain.
type State struct {
	X0, X1 int
}

// Validate reports whether the state is a legal configuration.
func (s State) Validate() error {
	if s.X0 < 0 || s.X1 < 0 {
		return fmt.Errorf("lv: negative counts in state (%d, %d)", s.X0, s.X1)
	}
	return nil
}

// Total returns x₀ + x₁.
func (s State) Total() int { return s.X0 + s.X1 }

// Gap returns the signed gap x₀ − x₁ (positive while the initial majority
// leads).
func (s State) Gap() int { return s.X0 - s.X1 }

// AbsGap returns |x₀ − x₁|, the gap between current majority and minority.
func (s State) AbsGap() int {
	if g := s.Gap(); g < 0 {
		return -g
	} else {
		return g
	}
}

// Min returns min(x₀, x₁), the current minority count.
func (s State) Min() int { return min(s.X0, s.X1) }

// Consensus reports whether at least one species is extinct.
func (s State) Consensus() bool { return s.X0 == 0 || s.X1 == 0 }

// Winner returns the index of the surviving species in a consensus state, or
// −1 if both species are extinct or the state is not a consensus state.
func (s State) Winner() int {
	switch {
	case s.X0 > 0 && s.X1 == 0:
		return 0
	case s.X1 > 0 && s.X0 == 0:
		return 1
	default:
		return -1
	}
}
