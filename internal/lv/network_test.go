package lv

import (
	"fmt"
	"math"
	"testing"

	"lvmajority/internal/crn"
	"lvmajority/internal/rng"
)

// newCRNSim builds a CRN simulator over a ToNetwork network from an LV
// state.
func newCRNSim(net *crn.Network, initial State, src *rng.Source) (*crn.Simulator, error) {
	return crn.NewSimulator(net, []int{initial.X0, initial.X1}, src)
}

// runCRNToConsensus runs the CRN jump chain to a consensus state and returns
// the winner index, or −1 for double extinction.
func runCRNToConsensus(sim *crn.Simulator) (int, error) {
	_, err := sim.Run(func(state []int) bool {
		return state[0] == 0 || state[1] == 0
	}, 0, nil)
	if err != nil {
		return 0, err
	}
	s := State{X0: sim.Count(0), X1: sim.Count(1)}
	return s.Winner(), nil
}

func TestToNetworkValidation(t *testing.T) {
	if _, err := ToNetwork(Params{Beta: -1, Competition: SelfDestructive}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestToNetworkPropensitiesMatchDirect(t *testing.T) {
	cfgs := []Params{
		Neutral(1.5, 0.5, 0.75, 0.25, SelfDestructive),
		Neutral(1.5, 0.5, 0.75, 0.25, NonSelfDestructive),
		{
			Beta: 1, Delta: 2,
			Alpha:       [2]float64{0.5, 1.5},
			Gamma:       [2]float64{2, 0.5},
			Competition: NonSelfDestructive,
		},
	}
	states := []State{{0, 0}, {1, 0}, {1, 1}, {5, 3}, {17, 29}}
	for _, p := range cfgs {
		net, err := ToNetwork(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range states {
			chain, err := NewChain(p, s, rng.New(1))
			if err != nil {
				t.Fatal(err)
			}
			_, direct := chain.Propensities()
			viaCRN := net.TotalPropensity([]int{s.X0, s.X1})
			if math.Abs(direct-viaCRN) > 1e-9*(1+direct) {
				t.Errorf("%v at %+v: direct total %v, CRN total %v", p, s, direct, viaCRN)
			}
		}
	}
}

func TestToNetworkReactionEffects(t *testing.T) {
	// Each CRN reaction applied to a state must produce the same
	// successor as the direct apply for the matching channel.
	kindsByName := map[string]EventKind{
		"birth0": Birth0, "birth1": Birth1,
		"death0": Death0, "death1": Death1,
		"inter0": Inter0, "inter1": Inter1,
		"intra0": Intra0, "intra1": Intra1,
	}
	for _, comp := range []Competition{SelfDestructive, NonSelfDestructive} {
		p := Neutral(1, 1, 1, 1, comp)
		net, err := ToNetwork(p)
		if err != nil {
			t.Fatal(err)
		}
		start := State{X0: 6, X1: 4}
		for r := 0; r < net.NumReactions(); r++ {
			name := net.Reaction(r).Name
			kind, found := kindsByName[name]
			if !found {
				t.Fatalf("unexpected reaction name %q", name)
			}
			state := []int{start.X0, start.X1}
			if err := net.Apply(r, state); err != nil {
				t.Fatalf("%v/%s: %v", comp, name, err)
			}
			want := apply(p, start, kind)
			got := State{X0: state[0], X1: state[1]}
			if got != want {
				t.Errorf("%v/%s: CRN gives %+v, direct gives %+v", comp, name, got, want)
			}
		}
	}
}

func TestToNetworkSpeciesNames(t *testing.T) {
	net, err := ToNetwork(Neutral(1, 1, 1, 0, SelfDestructive))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"X0", "X1"} {
		if got := net.SpeciesName(crn.Species(i)); got != want {
			t.Errorf("species %d named %q, want %q", i, got, want)
		}
	}
	if net.NumReactions() != 8 {
		t.Errorf("reactions = %d, want 8", net.NumReactions())
	}
	// All names unique.
	seen := map[string]bool{}
	for r := 0; r < net.NumReactions(); r++ {
		name := net.Reaction(r).Name
		if seen[name] {
			t.Errorf("duplicate reaction name %q", name)
		}
		seen[name] = true
	}
	_ = fmt.Sprintf("%v", net)
}
