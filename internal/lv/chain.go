package lv

import (
	"fmt"
	"math"

	"lvmajority/internal/rng"
)

// EventKind identifies one of the eight reaction channels of a two-species
// LV chain.
type EventKind int

// The reaction channels. BirthX/DeathX are the individual reactions of
// species X; InterX is the interspecific competition reaction initiated by
// species X (rate α_X); IntraX is the intraspecific competition within
// species X (rate γ_X).
const (
	Birth0 EventKind = iota
	Birth1
	Death0
	Death1
	Inter0
	Inter1
	Intra0
	Intra1
	numEvents
)

// String returns the channel name.
func (k EventKind) String() string {
	names := [...]string{"birth0", "birth1", "death0", "death1", "inter0", "inter1", "intra0", "intra1"}
	if k < 0 || int(k) >= len(names) {
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
	return names[k]
}

// IsIndividual reports whether the channel is an individual (birth or death)
// reaction — a "non-competitive" event in the paper's terminology.
func (k EventKind) IsIndividual() bool { return k <= Death1 }

// IsCompetitive reports whether the channel is a pairwise competition
// reaction.
func (k EventKind) IsCompetitive() bool { return k >= Inter0 }

// NumEventKinds is the number of reaction channels of a two-species LV
// chain.
const NumEventKinds = int(numEvents)

// PropensitiesFor returns the per-channel propensities of the chain with
// parameters p in state s, in EventKind order, together with the total
// propensity φ(x₀, x₁).
func PropensitiesFor(p Params, s State) ([NumEventKinds]float64, float64) {
	return propensities(p, s)
}

// ApplyEvent returns the successor of state s when channel k fires under
// parameters p. It does not check that the channel is enabled; callers
// should only apply channels with positive propensity.
func ApplyEvent(p Params, s State, k EventKind) State {
	return apply(p, s, k)
}

// Chain is a two-species stochastic LV chain: the discrete-time jump chain
// of the paper, optionally also tracking continuous (Gillespie) time.
// Construct with NewChain. A Chain is not safe for concurrent use.
type Chain struct {
	params Params
	state  State
	src    *rng.Source

	// trackTime enables continuous-time accounting: each step additionally
	// draws an exponential holding time at the total-propensity rate.
	trackTime bool
	time      float64
	steps     int
}

// NewChain creates a chain with the given parameters and initial state.
func NewChain(params Params, initial State, src *rng.Source) (*Chain, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := initial.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("lv: nil random source")
	}
	return &Chain{params: params, state: initial, src: src}, nil
}

// SetTrackTime enables or disables continuous-time tracking for subsequent
// steps.
func (c *Chain) SetTrackTime(on bool) { c.trackTime = on }

// Reset returns the chain to the given configuration with a fresh random
// stream: the time and step counters restart at zero while the parameters
// and time-tracking mode are kept. Replicated runs reuse one chain through
// Reset instead of constructing a new one per replicate.
func (c *Chain) Reset(initial State, src *rng.Source) error {
	if err := initial.Validate(); err != nil {
		return err
	}
	if src == nil {
		return fmt.Errorf("lv: nil random source")
	}
	c.state = initial
	c.src = src
	c.time = 0
	c.steps = 0
	return nil
}

// State returns the current configuration.
func (c *Chain) State() State { return c.state }

// Params returns the chain's rate parameters.
func (c *Chain) Params() Params { return c.params }

// Time returns the accumulated continuous time. It is only meaningful when
// time tracking is enabled.
func (c *Chain) Time() float64 { return c.time }

// Steps returns the number of reactions fired so far.
func (c *Chain) Steps() int { return c.steps }

// Propensities returns the per-channel propensities in the current state, in
// EventKind order, along with their sum φ(x₀, x₁).
func (c *Chain) Propensities() ([numEvents]float64, float64) {
	return propensities(c.params, c.state)
}

func propensities(p Params, s State) ([numEvents]float64, float64) {
	x0, x1 := float64(s.X0), float64(s.X1)
	var props [numEvents]float64
	props[Birth0] = p.Beta * x0
	props[Birth1] = p.Beta * x1
	props[Death0] = p.Delta * x0
	props[Death1] = p.Delta * x1
	props[Inter0] = p.Alpha[0] * x0 * x1
	props[Inter1] = p.Alpha[1] * x0 * x1
	props[Intra0] = p.Gamma[0] * x0 * (x0 - 1) / 2
	props[Intra1] = p.Gamma[1] * x1 * (x1 - 1) / 2
	var total float64
	for _, v := range props {
		total += v
	}
	return props, total
}

// apply fires the given channel on s and returns the successor state.
func apply(p Params, s State, k EventKind) State {
	switch k {
	case Birth0:
		s.X0++
	case Birth1:
		s.X1++
	case Death0:
		s.X0--
	case Death1:
		s.X1--
	case Inter0, Inter1:
		if p.Competition == SelfDestructive {
			s.X0--
			s.X1--
		} else if k == Inter0 {
			// Initiator 0 survives; the victim is species 1.
			s.X1--
		} else {
			s.X0--
		}
	case Intra0:
		if p.Competition == SelfDestructive {
			s.X0 -= 2
		} else {
			s.X0--
		}
	case Intra1:
		if p.Competition == SelfDestructive {
			s.X1 -= 2
		} else {
			s.X1--
		}
	}
	return s
}

// Step fires one reaction of the jump chain and returns its channel. It
// returns ok = false without changing the state when the total propensity is
// zero (the chain is absorbed — both species extinct, or all rates zero).
func (c *Chain) Step() (kind EventKind, ok bool) {
	props, total := propensities(c.params, c.state)
	if total <= 0 {
		return 0, false
	}
	if c.trackTime {
		c.time += c.src.Exp(total)
	}
	u := c.src.Float64() * total
	acc := 0.0
	kind = numEvents - 1
	for k, v := range props {
		if v == 0 {
			continue
		}
		acc += v
		kind = EventKind(k)
		if u < acc {
			break
		}
	}
	c.state = apply(c.params, c.state, kind)
	c.steps++
	return kind, true
}

// Outcome summarizes a run of a two-species chain until consensus (or until
// the step budget ran out). The counters correspond directly to the
// quantities named in the paper's analysis.
type Outcome struct {
	// Consensus reports whether a consensus configuration (some species
	// extinct) was reached within the step budget.
	Consensus bool
	// Winner is the surviving species (0 or 1) at consensus, or −1 if
	// both went extinct in the final event (possible under SD
	// interspecific competition from (1,1)) or consensus was not reached.
	Winner int
	// MajorityWon reports whether the initial majority species survived
	// at consensus. For an initial tie (Δ₀ = 0) it reports whether
	// species 0 survived.
	MajorityWon bool
	// Steps is the number of reactions fired, i.e. the consensus time
	// T(S) when Consensus holds.
	Steps int
	// Individual is I(S), the number of individual (birth/death) events.
	Individual int
	// Competitive is K(S), the number of pairwise competition events.
	Competitive int
	// BadNonCompetitive is J(S): individual events that decreased the
	// absolute gap between the current majority and minority species
	// while the minority count was positive.
	BadNonCompetitive int
	// FInd and FComp decompose the demographic noise F = Δ₀ − Δ_T into
	// contributions from individual and competitive events (F_ind and
	// F_comp of §1.5), measured with respect to the *initial* majority.
	FInd, FComp int
	// GapHitZero reports whether the chain visited a tied state
	// (x₀ = x₁ > 0) strictly before consensus.
	GapHitZero bool
	// MaxPopulation is the largest total population seen.
	MaxPopulation int
	// Final is the final configuration.
	Final State
	// Time is the continuous time at consensus; populated only when time
	// tracking is enabled.
	Time float64
}

// RunOptions configures Run.
type RunOptions struct {
	// MaxSteps caps the number of reactions (0 means DefaultMaxSteps).
	// Chains without competition and with β >= δ need a cap because they
	// may never reach consensus.
	MaxSteps int
	// TrackTime enables continuous-time accounting.
	TrackTime bool
}

// DefaultMaxSteps is the step budget used when RunOptions.MaxSteps is zero.
// The paper's Theorem 13 gives T(S) = O(n) with high probability for the
// competitive chains studied here, so this budget is effectively never
// binding for them.
const DefaultMaxSteps = 500_000_000

// Run simulates the chain from initial until consensus and returns the full
// event accounting. It runs the fused event kernel: a single allocation-free
// loop with the rate coefficients hoisted into locals and the absorption,
// budget, and gap accounting checks folded into the per-event arithmetic.
// For a given random stream it is byte-identical to stepping Step in a loop
// with the historical accounting.
func Run(params Params, initial State, src *rng.Source, opts RunOptions) (Outcome, error) {
	if err := params.Validate(); err != nil {
		return Outcome{}, err
	}
	if err := initial.Validate(); err != nil {
		return Outcome{}, err
	}
	if src == nil {
		return Outcome{}, fmt.Errorf("lv: nil random source")
	}
	// The chain lives on the stack: Run performs no heap allocation.
	chain := Chain{params: params, state: initial, src: src, trackTime: opts.TrackTime}
	return chain.runToConsensus(opts.MaxSteps), nil
}

// RunToConsensus runs the fused event kernel from the chain's current
// configuration until consensus, absorption, or the step budget runs out
// (maxSteps <= 0 means DefaultMaxSteps), and returns the full event
// accounting. Replicated runs reuse one chain through Reset +
// RunToConsensus without allocating.
func (c *Chain) RunToConsensus(maxSteps int) Outcome {
	return c.runToConsensus(maxSteps)
}

// runToConsensus is the fused event kernel behind Run and RunToConsensus.
//
//lint:hotpath
func (c *Chain) runToConsensus(maxSteps int) Outcome {
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	out := Outcome{Winner: -1, MaxPopulation: c.state.Total()}
	// The initial majority is species 0 when X0 >= X1, else species 1;
	// the paper's convention is S0 = (a, b) with a > b, but we support
	// either orientation (and ties, resolved in favor of species 0).
	majority := 0
	if c.state.X1 > c.state.X0 {
		majority = 1
	}

	// Precomputed rate coefficients and hot-loop state, hoisted out of
	// the event loop. The propensity expressions and the event switch
	// below deliberately duplicate propensities() and apply() — calling
	// them per event costs ~25% (they are beyond the inliner's budget,
	// and Params travels by value) — so any semantics change there must
	// land here too; TestFusedKernelByteIdenticalToStepLoop compares the
	// two paths event for event across every regime and trips on any
	// divergence.
	var (
		beta, dlt = c.params.Beta, c.params.Delta
		a0, a1    = c.params.Alpha[0], c.params.Alpha[1]
		g0, g1    = c.params.Gamma[0], c.params.Gamma[1]
		sd        = c.params.Competition == SelfDestructive
		trackTime = c.trackTime
		src       = c.src
		x0, x1    = c.state.X0, c.state.X1
		steps     = c.steps
		t         = c.time
		consensus = false
	)

	for {
		if x0 == 0 || x1 == 0 {
			consensus = true
			break
		}
		if steps >= maxSteps {
			break
		}

		// Propensities, in EventKind order with the exact expressions of
		// propensities() so the selection below is bit-identical to Step.
		fx0, fx1 := float64(x0), float64(x1)
		var props [numEvents]float64
		props[Birth0] = beta * fx0
		props[Birth1] = beta * fx1
		props[Death0] = dlt * fx0
		props[Death1] = dlt * fx1
		props[Inter0] = a0 * fx0 * fx1
		props[Inter1] = a1 * fx0 * fx1
		props[Intra0] = g0 * fx0 * (fx0 - 1) / 2
		props[Intra1] = g1 * fx1 * (fx1 - 1) / 2
		var total float64
		for _, v := range props {
			total += v
		}
		if total <= 0 {
			// Zero propensity without consensus: all rates are zero,
			// the chain can never reach consensus.
			break
		}

		if trackTime {
			t += src.Exp(total)
		}
		u := src.Float64() * total
		acc := 0.0
		kind := numEvents - 1
		for k, v := range props {
			if v == 0 {
				continue
			}
			acc += v
			kind = EventKind(k)
			if u < acc {
				break
			}
		}

		px0, px1 := x0, x1
		switch kind {
		case Birth0:
			x0++
		case Birth1:
			x1++
		case Death0:
			x0--
		case Death1:
			x1--
		case Inter0, Inter1:
			if sd {
				x0--
				x1--
			} else if kind == Inter0 {
				// Initiator 0 survives; the victim is species 1.
				x1--
			} else {
				x0--
			}
		case Intra0:
			if sd {
				x0 -= 2
			} else {
				x0--
			}
		case Intra1:
			if sd {
				x1 -= 2
			} else {
				x1--
			}
		}
		steps++

		// Fused gap accounting, all in integer arithmetic.
		var fStep int
		if majority == 0 {
			fStep = (px0 - px1) - (x0 - x1)
		} else {
			fStep = (px1 - px0) - (x1 - x0)
		}
		if kind <= Death1 {
			out.Individual++
			out.FInd += fStep
			// Bad non-competitive event: the absolute gap between
			// current majority and minority decreased while the
			// minority had positive count.
			if min(px0, px1) > 0 && absInt(x0-x1) == absInt(px0-px1)-1 {
				out.BadNonCompetitive++
			}
		} else {
			out.Competitive++
			out.FComp += fStep
		}
		if x0+x1 > out.MaxPopulation {
			out.MaxPopulation = x0 + x1
		}
		if x0 == x1 && x0 != 0 {
			out.GapHitZero = true
		}
	}

	c.state = State{X0: x0, X1: x1}
	c.steps = steps
	c.time = t
	out.Steps = steps
	out.Final = c.state
	out.Time = t
	if consensus {
		out.Consensus = true
		out.Winner = out.Final.Winner()
		out.MajorityWon = out.Winner == majority
	}
	return out
}

// absInt returns |v|.
func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// ExpectedDeterministicWinner returns the species that wins under the
// deterministic mass-action ODE approximation (Eq. 4 of the paper) in the
// neutral case with α′ > γ′: the species with strictly larger initial
// density. It returns −1 for a tie.
func ExpectedDeterministicWinner(initial State) int {
	switch {
	case initial.X0 > initial.X1:
		return 0
	case initial.X1 > initial.X0:
		return 1
	default:
		return -1
	}
}

// ConsensusProbabilityExact returns the exact majority-consensus probability
// ρ(S) = a/(a+b) that Theorems 20 and 23 establish for the solvable regimes
// (SD with α = γ; NSD with γ = 2α; and the no-competition case), where a is
// the initial majority count and b the minority count.
func ConsensusProbabilityExact(initial State) float64 {
	a := math.Max(float64(initial.X0), float64(initial.X1))
	total := float64(initial.Total())
	if total == 0 {
		return 0
	}
	return a / total
}
