package sim

import (
	"errors"

	"lvmajority/internal/crn"
	"lvmajority/internal/rng"
)

// CRNClock selects the clock of a direct-method CRN engine.
type CRNClock int

const (
	// JumpChain advances the embedded discrete-time jump chain; Time
	// stays zero.
	JumpChain CRNClock = iota
	// Gillespie additionally draws an exponential holding time per event,
	// so Time is the continuous (physical) time of the chain.
	Gillespie
)

// crnDirect adapts crn.Simulator (the direct method) to Engine.
type crnDirect struct {
	sim     *crn.Simulator
	initial []int
	clock   CRNClock
	done    bool
	err     error
}

// NewCRN returns a direct-method (Gillespie SSA) engine over net. The
// event code of Step is the fired reaction index.
func NewCRN(net *crn.Network, initial []int, clock CRNClock, src *rng.Source) (Engine, error) {
	s, err := crn.NewSimulator(net, initial, src)
	if err != nil {
		return nil, err
	}
	init := make([]int, len(initial))
	copy(init, initial)
	return &crnDirect{sim: s, initial: init, clock: clock}, nil
}

func (e *crnDirect) Step() (int, bool) {
	if e.done {
		return 0, false
	}
	var r int
	var err error
	if e.clock == Gillespie {
		r, _, err = e.sim.StepTime()
	} else {
		r, err = e.sim.Step()
	}
	if err != nil {
		e.done = true
		if !errors.Is(err, crn.ErrExhausted) {
			e.err = err
		}
		return 0, false
	}
	return r, true
}

func (e *crnDirect) Time() float64 { return e.sim.Time() }
func (e *crnDirect) Steps() int    { return e.sim.Steps() }
func (e *crnDirect) State() []int  { return e.sim.StateView() }
func (e *crnDirect) Err() error    { return e.err }

func (e *crnDirect) Reset(src *rng.Source) {
	e.done, e.err = false, nil
	if err := e.sim.Reset(e.initial, src); err != nil {
		e.done, e.err = true, err
	}
}

// crnNRM adapts crn.NRMSimulator (Gibson–Bruck next-reaction method) to
// Engine.
type crnNRM struct {
	sim     *crn.NRMSimulator
	initial []int
	done    bool
	err     error
}

// NewCRNNextReaction returns a next-reaction-method engine over net. It
// samples the same continuous-time chain as NewCRN with the Gillespie
// clock, in O(D·log R) work per event. The event code is the fired
// reaction index.
func NewCRNNextReaction(net *crn.Network, initial []int, src *rng.Source) (Engine, error) {
	s, err := crn.NewNRMSimulator(net, initial, src)
	if err != nil {
		return nil, err
	}
	init := make([]int, len(initial))
	copy(init, initial)
	return &crnNRM{sim: s, initial: init}, nil
}

func (e *crnNRM) Step() (int, bool) {
	if e.done {
		return 0, false
	}
	r, err := e.sim.Step()
	if err != nil {
		e.done = true
		if !errors.Is(err, crn.ErrExhausted) {
			e.err = err
		}
		return 0, false
	}
	return r, true
}

func (e *crnNRM) Time() float64 { return e.sim.Time() }
func (e *crnNRM) Steps() int    { return e.sim.Steps() }
func (e *crnNRM) State() []int  { return e.sim.StateView() }
func (e *crnNRM) Err() error    { return e.err }

func (e *crnNRM) Reset(src *rng.Source) {
	e.done, e.err = false, nil
	if err := e.sim.Reset(e.initial, src); err != nil {
		e.done, e.err = true, err
	}
}

// crnLeap adapts crn.LeapSimulator (explicit tau-leaping) to Engine.
type crnLeap struct {
	sim     *crn.LeapSimulator
	initial []int
	done    bool
	err     error
}

// NewCRNLeap returns a tau-leaping engine over net. One Step call advances
// the chain by one leap (or one batch of exact fallback steps); Steps
// counts the leaps and fallback reactions taken, so it can grow by more
// than one per call. The event code is always zero — leaps fire many
// channels at once.
func NewCRNLeap(net *crn.Network, initial []int, opts crn.LeapOptions, src *rng.Source) (Engine, error) {
	s, err := crn.NewLeapSimulator(net, initial, src, opts)
	if err != nil {
		return nil, err
	}
	init := make([]int, len(initial))
	copy(init, initial)
	return &crnLeap{sim: s, initial: init}, nil
}

func (e *crnLeap) Step() (int, bool) {
	if e.done {
		return 0, false
	}
	if err := e.sim.Leap(); err != nil {
		e.done = true
		if !errors.Is(err, crn.ErrExhausted) {
			e.err = err
		}
		return 0, false
	}
	return 0, true
}

func (e *crnLeap) Time() float64 { return e.sim.Time() }
func (e *crnLeap) Steps() int    { return e.sim.Leaps() + e.sim.ExactSteps() }
func (e *crnLeap) State() []int  { return e.sim.StateView() }
func (e *crnLeap) Err() error    { return e.err }

func (e *crnLeap) Reset(src *rng.Source) {
	e.done, e.err = false, nil
	if err := e.sim.Reset(e.initial, src); err != nil {
		e.done, e.err = true, err
	}
}
