package sim

import (
	"fmt"

	"lvmajority/internal/gossip"
	"lvmajority/internal/rng"
)

// gossipEngine adapts a synchronous gossip.Dynamics to Engine.
type gossipEngine struct {
	dyn     gossip.Dynamics
	initial gossip.Counts
	cur     gossip.Counts
	src     *rng.Source
	rounds  int
	buf     [3]int
	err     error
}

// NewGossip returns an engine over one synchronous opinion dynamics on the
// complete graph. The state vector is [c0, c1, undecided]; one Step is one
// synchronous round (event code 0), and both Time and Steps count rounds.
// The engine is absorbed once a decided opinion is extinct — the natural
// consensus criterion, since no dynamics in the gossip package can revive
// an extinct opinion.
func NewGossip(d gossip.Dynamics, initial gossip.Counts, src *rng.Source) (Engine, error) {
	if d == nil {
		return nil, fmt.Errorf("sim: nil gossip dynamics")
	}
	if initial.C0 < 0 || initial.C1 < 0 || initial.U < 0 {
		return nil, fmt.Errorf("sim: negative gossip counts %v", initial)
	}
	if initial.N() == 0 {
		return nil, fmt.Errorf("sim: empty gossip population")
	}
	if initial.U > 0 && !d.Undecided() {
		return nil, fmt.Errorf("sim: %s has no undecided state but initial %v has undecided agents", d.Name(), initial)
	}
	if src == nil {
		return nil, fmt.Errorf("sim: nil random source")
	}
	return &gossipEngine{dyn: d, initial: initial, cur: initial, src: src}, nil
}

func (e *gossipEngine) Step() (int, bool) {
	if e.err != nil {
		return 0, false
	}
	if done, _ := e.cur.Decided(); done {
		return 0, false
	}
	next := e.dyn.Step(e.cur, e.src)
	if next.N() != e.cur.N() {
		e.err = fmt.Errorf("sim: %s changed the population size %d -> %d", e.dyn.Name(), e.cur.N(), next.N())
		return 0, false
	}
	e.cur = next
	e.rounds++
	return 0, true
}

func (e *gossipEngine) Time() float64 { return float64(e.rounds) }
func (e *gossipEngine) Steps() int    { return e.rounds }
func (e *gossipEngine) Err() error    { return e.err }

func (e *gossipEngine) State() []int {
	e.buf[0], e.buf[1], e.buf[2] = e.cur.C0, e.cur.C1, e.cur.U
	return e.buf[:]
}

func (e *gossipEngine) Reset(src *rng.Source) {
	e.cur = e.initial
	e.src = src
	e.rounds = 0
	e.err = nil
}
