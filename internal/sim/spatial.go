package sim

import (
	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
	"lvmajority/internal/spatial"
)

// spatialEngine adapts spatial.System to Engine.
type spatialEngine struct {
	sys     *spatial.System
	initial []lv.State
	buf     []int
	done    bool
}

// NewSpatial returns an engine over the deme-structured spatial LV system.
// The state vector flattens the per-deme configurations as
// [x0(deme0), x1(deme0), x0(deme1), ...]; the event code is always zero.
// The engine is absorbed when the total propensity is zero; global
// consensus is a StopCondition concern (see SpatialConsensus).
func NewSpatial(params spatial.Params, initial []lv.State, trackTime bool, src *rng.Source) (Engine, error) {
	sys, err := spatial.NewSystem(params, initial, src)
	if err != nil {
		return nil, err
	}
	sys.SetTrackTime(trackTime)
	init := make([]lv.State, len(initial))
	copy(init, initial)
	return &spatialEngine{
		sys:     sys,
		initial: init,
		buf:     make([]int, 2*len(initial)),
	}, nil
}

func (e *spatialEngine) Step() (int, bool) {
	if e.done {
		return 0, false
	}
	if !e.sys.Step() {
		e.done = true
		return 0, false
	}
	return 0, true
}

func (e *spatialEngine) Time() float64 { return e.sys.Time() }
func (e *spatialEngine) Steps() int    { return e.sys.Steps() }
func (e *spatialEngine) Err() error    { return nil }

func (e *spatialEngine) State() []int {
	for d := 0; d < e.sys.NumDemes(); d++ {
		s := e.sys.Deme(d)
		e.buf[2*d] = s.X0
		e.buf[2*d+1] = s.X1
	}
	return e.buf
}

func (e *spatialEngine) Reset(src *rng.Source) {
	e.done = false
	// Validated at construction; Reset cannot fail.
	_ = e.sys.Reset(e.initial, src)
}

// SpatialConsensus is the stop condition for global consensus of a spatial
// engine: summed over demes, at least one species is extinct.
func SpatialConsensus(state []int) bool {
	var x0, x1 int
	for i := 0; i+1 < len(state); i += 2 {
		x0 += state[i]
		x1 += state[i+1]
	}
	return x0 == 0 || x1 == 0
}
