package sim

import (
	"fmt"

	"lvmajority/internal/moran"
	"lvmajority/internal/rng"
)

// moranEngine adapts the Moran jump chain to Engine.
type moranEngine struct {
	chain *moran.Chain
	buf   [2]int
	err   error
}

// NewMoran returns an engine over the two-type Moran process with
// population size n and a initial individuals of type 0. The state vector
// is [type0, type1]; one Step is one state-changing (jump) step, with
// event code 1 when the type-0 count went up and 0 when it went down.
// Time counts the underlying Moran steps, including the holding steps the
// jump chain accounts for in aggregate.
func NewMoran(p moran.Params, n, a int, src *rng.Source) (Engine, error) {
	c, err := moran.NewChain(p, n, a, src)
	if err != nil {
		return nil, err
	}
	return &moranEngine{chain: c}, nil
}

func (e *moranEngine) Step() (int, bool) {
	if e.err != nil {
		return 0, false
	}
	up, ok := e.chain.Step()
	if !ok {
		// Distinguish genuine fixation from the jump-step safety cap,
		// which the Engine contract must report as a failure, not as
		// absorption.
		if done, _ := e.chain.Absorbed(); !done {
			e.err = fmt.Errorf("sim: moran chain exceeded %d jump steps", e.chain.JumpSteps())
		}
		return 0, false
	}
	if up {
		return 1, true
	}
	return 0, true
}

func (e *moranEngine) Time() float64 { return float64(e.chain.MoranSteps()) }
func (e *moranEngine) Steps() int    { return e.chain.JumpSteps() }
func (e *moranEngine) Err() error    { return e.err }

func (e *moranEngine) State() []int {
	e.buf[0] = e.chain.Count()
	e.buf[1] = e.chain.N() - e.chain.Count()
	return e.buf[:]
}

func (e *moranEngine) Reset(src *rng.Source) {
	e.err = nil
	e.chain.Reset(src)
}
