package sim

// StopCondition inspects the live state vector after each event and reports
// whether the run should stop. The callback must not modify or retain the
// slice.
type StopCondition func(state []int) bool

// Limits bounds a Run. The zero value means unlimited.
type Limits struct {
	// MaxSteps caps the number of events fired during this Run call
	// (0 = no limit).
	MaxSteps int
	// MaxTime stops the run once the engine's Time reaches this value
	// (0 = no limit).
	MaxTime float64
}

// Result summarizes a Run invocation.
type Result struct {
	// Steps is the number of events fired during this Run call.
	Steps int
	// Time is the engine's time when the run ended.
	Time float64
	// Absorbed reports whether the engine reached a state from which no
	// further event can occur.
	Absorbed bool
	// Stopped reports whether the stop condition ended the run.
	Stopped bool
}

// Run advances the engine until the stop condition holds, the chain is
// absorbed, the limits are exhausted, or the engine fails. It subsumes the
// historical per-package Run/RunTime loops: the same code drives every
// backend, and the stop condition sees the live state after each event.
func Run(e Engine, stop StopCondition, lim Limits) (Result, error) {
	var res Result
	start := e.Steps()
	if stop != nil && stop(e.State()) {
		res.Stopped = true
		res.Time = e.Time()
		return res, nil
	}
	for {
		if lim.MaxSteps > 0 && e.Steps()-start >= lim.MaxSteps {
			break
		}
		if lim.MaxTime > 0 && e.Time() >= lim.MaxTime {
			break
		}
		if _, ok := e.Step(); !ok {
			if err := e.Err(); err != nil {
				res.Steps = e.Steps() - start
				res.Time = e.Time()
				return res, err
			}
			res.Absorbed = true
			break
		}
		if stop != nil && stop(e.State()) {
			res.Stopped = true
			break
		}
	}
	res.Steps = e.Steps() - start
	res.Time = e.Time()
	return res, nil
}
