package sim

import (
	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
)

// lvEngine adapts lv.Chain to Engine.
type lvEngine struct {
	chain   *lv.Chain
	initial lv.State
	buf     [2]int
	done    bool
}

// NewLV returns an engine over the two-species Lotka–Volterra jump chain.
// The state vector is [x0, x1] and the event code is the lv.EventKind of
// the fired channel. With trackTime the engine also accumulates Gillespie
// continuous time.
func NewLV(params lv.Params, initial lv.State, trackTime bool, src *rng.Source) (Engine, error) {
	c, err := lv.NewChain(params, initial, src)
	if err != nil {
		return nil, err
	}
	c.SetTrackTime(trackTime)
	return &lvEngine{chain: c, initial: initial}, nil
}

func (e *lvEngine) Step() (int, bool) {
	if e.done {
		return 0, false
	}
	kind, ok := e.chain.Step()
	if !ok {
		e.done = true
		return 0, false
	}
	return int(kind), true
}

func (e *lvEngine) Time() float64 { return e.chain.Time() }
func (e *lvEngine) Steps() int    { return e.chain.Steps() }
func (e *lvEngine) Err() error    { return nil }

func (e *lvEngine) State() []int {
	s := e.chain.State()
	e.buf[0], e.buf[1] = s.X0, s.X1
	return e.buf[:]
}

func (e *lvEngine) Reset(src *rng.Source) {
	e.done = false
	// The initial state and source were validated at construction; Reset
	// cannot fail.
	_ = e.chain.Reset(e.initial, src)
}

// LVConsensus is the stop condition for two-species consensus: at least one
// species extinct. It applies to any engine whose first two state entries
// are the species counts.
func LVConsensus(state []int) bool { return state[0] == 0 || state[1] == 0 }
