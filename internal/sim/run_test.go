package sim_test

import (
	"testing"

	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
	"lvmajority/internal/sim"
)

func newLVEngine(t *testing.T, seed uint64) sim.Engine {
	t.Helper()
	e, err := sim.NewLV(lv.Neutral(1, 1, 1, 0, lv.SelfDestructive), lv.State{X0: 30, X1: 20}, true, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRunStopsAtConsensus(t *testing.T) {
	e := newLVEngine(t, 1)
	res, err := sim.Run(e, sim.LVConsensus, sim.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatalf("run did not stop at consensus: %+v", res)
	}
	if !sim.LVConsensus(e.State()) {
		t.Errorf("stopped in a non-consensus state %v", e.State())
	}
	if res.Steps == 0 || res.Time <= 0 {
		t.Errorf("implausible result %+v", res)
	}
}

func TestRunHonorsMaxSteps(t *testing.T) {
	e := newLVEngine(t, 2)
	res, err := sim.Run(e, nil, sim.Limits{MaxSteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 10 || res.Stopped || res.Absorbed {
		t.Errorf("MaxSteps run = %+v, want exactly 10 plain steps", res)
	}
}

func TestRunHonorsMaxTime(t *testing.T) {
	e := newLVEngine(t, 3)
	res, err := sim.Run(e, nil, sim.Limits{MaxTime: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped || res.Absorbed {
		t.Errorf("time-limited run misclassified: %+v", res)
	}
	if res.Time < 0.25 {
		t.Errorf("run ended at time %v before the limit", res.Time)
	}
}

func TestRunImmediateStop(t *testing.T) {
	e := newLVEngine(t, 4)
	res, err := sim.Run(e, func([]int) bool { return true }, sim.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || res.Steps != 0 {
		t.Errorf("immediate stop produced %+v", res)
	}
}

func TestSpatialConsensusHelper(t *testing.T) {
	cases := []struct {
		state []int
		want  bool
	}{
		{[]int{1, 1, 2, 3}, false},
		{[]int{0, 1, 0, 3}, true},
		{[]int{1, 0, 2, 0}, true},
		{[]int{0, 0}, true},
	}
	for _, tc := range cases {
		if got := sim.SpatialConsensus(tc.state); got != tc.want {
			t.Errorf("SpatialConsensus(%v) = %v, want %v", tc.state, got, tc.want)
		}
	}
}
