package sim_test

import (
	"testing"

	"lvmajority/internal/crn"
	"lvmajority/internal/gossip"
	"lvmajority/internal/lv"
	"lvmajority/internal/moran"
	"lvmajority/internal/rng"
	"lvmajority/internal/sim"
	"lvmajority/internal/spatial"
)

// lvSDNetwork is the self-destructive LV chain in the crn text format,
// used to drive all three CRN simulators through the same model.
const lvSDNetwork = `
species: X0 X1
X0 -> 2 X0 @ 1
X1 -> 2 X1 @ 1
X0 -> 0 @ 1
X1 -> 0 @ 1
X0 + X1 -> 0 @ 0.5
X1 + X0 -> 0 @ 0.5
`

// backend is one Engine implementation under conformance test.
type backend struct {
	name string
	make func(src *rng.Source) (sim.Engine, error)
	// stop ends a run at the backend's consensus condition; backends that
	// absorb at consensus leave it nil.
	stop sim.StopCondition
	// budget bounds the manual stepping loop (Step calls).
	budget int
}

func backends(t *testing.T) []backend {
	t.Helper()
	net, err := crn.Parse(lvSDNetwork)
	if err != nil {
		t.Fatal(err)
	}
	crnInit := []int{24, 16}
	return []backend{
		{
			name:   "crn-direct",
			make:   func(src *rng.Source) (sim.Engine, error) { return sim.NewCRN(net, crnInit, sim.Gillespie, src) },
			stop:   sim.LVConsensus,
			budget: 500_000,
		},
		{
			name:   "crn-jump",
			make:   func(src *rng.Source) (sim.Engine, error) { return sim.NewCRN(net, crnInit, sim.JumpChain, src) },
			stop:   sim.LVConsensus,
			budget: 500_000,
		},
		{
			name:   "crn-nrm",
			make:   func(src *rng.Source) (sim.Engine, error) { return sim.NewCRNNextReaction(net, crnInit, src) },
			stop:   sim.LVConsensus,
			budget: 500_000,
		},
		{
			name: "crn-leap",
			make: func(src *rng.Source) (sim.Engine, error) {
				return sim.NewCRNLeap(net, []int{360, 240}, crn.LeapOptions{}, src)
			},
			stop:   sim.LVConsensus,
			budget: 500_000,
		},
		{
			name: "lv",
			make: func(src *rng.Source) (sim.Engine, error) {
				return sim.NewLV(lv.Neutral(1, 1, 1, 0, lv.SelfDestructive), lv.State{X0: 24, X1: 16}, true, src)
			},
			stop:   sim.LVConsensus,
			budget: 500_000,
		},
		{
			name:   "moran",
			make:   func(src *rng.Source) (sim.Engine, error) { return sim.NewMoran(moran.Params{Fitness: 1}, 30, 18, src) },
			budget: 500_000,
		},
		{
			name: "gossip",
			make: func(src *rng.Source) (sim.Engine, error) {
				return sim.NewGossip(gossip.TwoChoices{}, gossip.Counts{C0: 40, C1: 24}, src)
			},
			budget: 100_000,
		},
		{
			name: "spatial",
			make: func(src *rng.Source) (sim.Engine, error) {
				params := spatial.Params{
					Local:     lv.Neutral(1, 1, 1, 0, lv.SelfDestructive),
					Sites:     4,
					Migration: 1,
				}
				initial := []lv.State{{X0: 6, X1: 3}, {X0: 6, X1: 3}, {X0: 6, X1: 3}, {X0: 6, X1: 3}}
				return sim.NewSpatial(params, initial, true, src)
			},
			stop:   sim.SpatialConsensus,
			budget: 500_000,
		},
	}
}

// trace records the observable behaviour of one manual run.
type trace struct {
	events []int
	states [][]int
	times  []float64

	finalSteps int
	finalTime  float64
	finalState []int
	absorbed   bool
	stopped    bool
}

// tracePrefix caps the per-step recording; the final summary still covers
// the whole run.
const tracePrefix = 2000

// runTrace drives the engine by hand, checking the step-local invariants,
// and records the observable sequence for reproducibility comparison.
func runTrace(t *testing.T, e sim.Engine, stop sim.StopCondition, budget int) trace {
	t.Helper()
	var tr trace
	if e.Steps() != 0 {
		t.Fatalf("fresh engine reports %d steps", e.Steps())
	}
	if e.Time() != 0 {
		t.Fatalf("fresh engine reports time %v", e.Time())
	}
	stateLen := len(e.State())
	if stateLen == 0 {
		t.Fatal("empty state vector")
	}

	for call := 0; call < budget; call++ {
		if stop != nil && stop(e.State()) {
			tr.stopped = true
			break
		}
		prevSteps := e.Steps()
		prevTime := e.Time()
		ev, ok := e.Step()
		if !ok {
			if err := e.Err(); err != nil {
				t.Fatalf("engine failed after %d steps: %v", e.Steps(), err)
			}
			tr.absorbed = true
			// Absorption must be sticky and must not change the state.
			state := append([]int(nil), e.State()...)
			steps := e.Steps()
			for i := 0; i < 3; i++ {
				if _, again := e.Step(); again {
					t.Fatal("Step succeeded after absorption")
				}
			}
			if e.Steps() != steps {
				t.Fatal("Steps changed after absorption")
			}
			for i, v := range e.State() {
				if v != state[i] {
					t.Fatal("state changed after absorption")
				}
			}
			break
		}
		if e.Steps() <= prevSteps {
			t.Fatalf("Steps not increasing: %d -> %d", prevSteps, e.Steps())
		}
		if e.Time() < prevTime {
			t.Fatalf("time decreased: %v -> %v", prevTime, e.Time())
		}
		state := e.State()
		if len(state) != stateLen {
			t.Fatalf("state length changed: %d -> %d", stateLen, len(state))
		}
		for i, v := range state {
			if v < 0 {
				t.Fatalf("negative count %d at state[%d] after %d steps", v, i, e.Steps())
			}
		}
		if len(tr.events) < tracePrefix {
			tr.events = append(tr.events, ev)
			tr.states = append(tr.states, append([]int(nil), state...))
			tr.times = append(tr.times, e.Time())
		}
	}
	if !tr.absorbed && !tr.stopped {
		t.Fatalf("run neither absorbed nor stopped within %d step calls", budget)
	}
	tr.finalSteps = e.Steps()
	tr.finalTime = e.Time()
	tr.finalState = append([]int(nil), e.State()...)
	return tr
}

func equalTraces(t *testing.T, name string, a, b trace) {
	t.Helper()
	if a.absorbed != b.absorbed || a.stopped != b.stopped {
		t.Fatalf("%s: termination differs: absorbed %v/%v stopped %v/%v",
			name, a.absorbed, b.absorbed, a.stopped, b.stopped)
	}
	if a.finalSteps != b.finalSteps || a.finalTime != b.finalTime {
		t.Fatalf("%s: final (steps, time) differ: (%d, %v) vs (%d, %v)",
			name, a.finalSteps, a.finalTime, b.finalSteps, b.finalTime)
	}
	if len(a.events) != len(b.events) {
		t.Fatalf("%s: recorded %d vs %d events", name, len(a.events), len(b.events))
	}
	for i := range a.events {
		if a.events[i] != b.events[i] || a.times[i] != b.times[i] {
			t.Fatalf("%s: step %d differs: event %d@%v vs %d@%v",
				name, i, a.events[i], a.times[i], b.events[i], b.times[i])
		}
		for j := range a.states[i] {
			if a.states[i][j] != b.states[i][j] {
				t.Fatalf("%s: step %d state differs: %v vs %v", name, i, a.states[i], b.states[i])
			}
		}
	}
	for j := range a.finalState {
		if a.finalState[j] != b.finalState[j] {
			t.Fatalf("%s: final state differs: %v vs %v", name, a.finalState, b.finalState)
		}
	}
}

// TestEngineConformance checks the shared Engine invariants — monotone
// time, step counting, sticky absorption, state sanity, and Reset
// reproducibility under a fixed seed — against every backend.
func TestEngineConformance(t *testing.T) {
	const seed = 7
	for _, bk := range backends(t) {
		bk := bk
		t.Run(bk.name, func(t *testing.T) {
			t.Parallel()
			e, err := bk.make(rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			first := runTrace(t, e, bk.stop, bk.budget)

			// Reset with the same stream must reproduce the run exactly.
			e.Reset(rng.New(seed))
			if e.Steps() != 0 || e.Time() != 0 {
				t.Fatalf("Reset engine reports steps=%d time=%v", e.Steps(), e.Time())
			}
			replay := runTrace(t, e, bk.stop, bk.budget)
			equalTraces(t, "reset replay", first, replay)

			// A freshly constructed engine with the same stream must
			// behave identically to the Reset one.
			fresh, err := bk.make(rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			construction := runTrace(t, fresh, bk.stop, bk.budget)
			equalTraces(t, "fresh construction", first, construction)

			// A different stream must (overwhelmingly likely) diverge.
			e.Reset(rng.New(seed + 1))
			other := runTrace(t, e, bk.stop, bk.budget)
			if other.finalSteps == first.finalSteps && other.finalTime == first.finalTime &&
				len(other.events) == len(first.events) {
				same := true
				for i := range other.events {
					if other.events[i] != first.events[i] || other.times[i] != first.times[i] {
						same = false
						break
					}
				}
				if same && len(first.events) > 4 {
					t.Error("different seeds produced identical runs")
				}
			}
		})
	}
}

// TestEngineResetReuseAllocationFree audits Reset buffer reuse across all
// engines: after one warm-up run (which may materialize lazy buffers, e.g.
// the tau-leap fallback simulator), Reset plus a steady-state stepping loop
// must not allocate at all. This is what lets the mc replication pool reuse
// one engine per worker without per-replicate garbage.
func TestEngineResetReuseAllocationFree(t *testing.T) {
	for _, bk := range backends(t) {
		bk := bk
		t.Run(bk.name, func(t *testing.T) {
			e, err := bk.make(rng.New(3))
			if err != nil {
				t.Fatal(err)
			}
			// Warm up to steady state.
			if _, err := sim.Run(e, bk.stop, sim.Limits{MaxSteps: 2000}); err != nil {
				t.Fatal(err)
			}
			src := rng.New(0)
			seed := uint64(0)
			allocs := testing.AllocsPerRun(10, func() {
				seed++
				src.Reseed(seed)
				e.Reset(src)
				for i := 0; i < 300; i++ {
					if _, ok := e.Step(); !ok {
						break
					}
				}
			})
			if allocs != 0 {
				t.Errorf("%s: Reset + steady-state stepping allocated %v times per run, want 0", bk.name, allocs)
			}
		})
	}
}

// TestEngineConformanceViaRun exercises every backend through the shared
// Run loop instead of manual stepping: the run must terminate with the
// same classification and respect the step limit.
func TestEngineConformanceViaRun(t *testing.T) {
	for _, bk := range backends(t) {
		bk := bk
		t.Run(bk.name, func(t *testing.T) {
			t.Parallel()
			e, err := bk.make(rng.New(11))
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(e, bk.stop, sim.Limits{MaxSteps: 10 * bk.budget})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Absorbed && !res.Stopped {
				t.Fatalf("run hit the step limit: %+v", res)
			}
			if res.Steps != e.Steps() {
				t.Errorf("result steps %d != engine steps %d", res.Steps, e.Steps())
			}

			// A tiny step limit must stop the run early.
			e.Reset(rng.New(11))
			res, err = sim.Run(e, nil, sim.Limits{MaxSteps: 3})
			if err != nil {
				t.Fatal(err)
			}
			if res.Steps < 1 || (res.Steps > 3 && bk.name != "crn-leap") {
				// Tau-leaping may overshoot a step budget within one
				// batched call; every other backend must respect it
				// exactly.
				t.Errorf("MaxSteps=3 run took %d steps", res.Steps)
			}
		})
	}
}
