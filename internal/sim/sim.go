// Package sim defines the unified simulation-engine abstraction shared by
// every stochastic model in this repository: the exact and approximate CRN
// simulators, the two-species Lotka–Volterra jump chain, the Moran process,
// synchronous gossip dynamics, and the deme-structured spatial LV system.
//
// An Engine is one replicable execution advanced one event at a time; the
// shared Run loop subsumes the per-package Run/RunTime variants, and the
// mc package replicates engines across a worker pool with deterministic
// per-replicate streams. New backends only implement Engine (typically a
// ~50-line adapter) and inherit the replication harness, the stop/limit
// machinery, and the conformance test suite for free.
package sim

import "lvmajority/internal/rng"

// Engine is one replicable stochastic simulation: a discrete- or
// continuous-time Markov chain advanced one event at a time. Engines are
// not safe for concurrent use; replicated runs give each worker its own
// engine.
//
// Step fires one event and returns an engine-specific event code with
// ok = true. It returns ok = false without changing the state when the
// chain cannot continue: either it is absorbed (Err() == nil) or the
// engine failed (Err() != nil, e.g. a tau-leap step-size failure). After
// ok = false, every further Step call returns ok = false until Reset.
//
// Time returns the accumulated continuous time for engines that track one,
// and otherwise a monotone non-decreasing progress measure (e.g. rounds);
// it is zero on a fresh or freshly Reset engine. Steps counts the events
// fired since construction or Reset; a single Step call may account for
// more than one event on batching engines such as tau-leaping.
//
// State returns the current state vector. The slice is owned by the engine
// and only valid until the next Step or Reset call; callers must copy it to
// retain. Its length and meaning are fixed per engine.
//
// Reset returns the engine to its initial configuration with a fresh
// random stream, reusing internal buffers so that replicated runs do not
// allocate on the hot path. A Reset engine behaves identically to a newly
// constructed one seeded with the same stream.
type Engine interface {
	Step() (event int, ok bool)
	Time() float64
	Steps() int
	State() []int
	Reset(src *rng.Source)
	Err() error
}
