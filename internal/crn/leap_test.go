package crn

import (
	"errors"
	"math"
	"testing"

	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

func TestNewLeapSimulatorValidation(t *testing.T) {
	net := deathNetwork(t, 1)
	if _, err := NewLeapSimulator(net, []int{1, 2}, rng.New(1), LeapOptions{}); err == nil {
		t.Error("wrong state length accepted")
	}
	if _, err := NewLeapSimulator(net, []int{-1}, rng.New(1), LeapOptions{}); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := NewLeapSimulator(net, []int{1}, nil, LeapOptions{}); err == nil {
		t.Error("nil source accepted")
	}
}

func TestLeapAbsorbed(t *testing.T) {
	net := deathNetwork(t, 1)
	sim, err := NewLeapSimulator(net, []int{0}, rng.New(1), LeapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Leap(); !errors.Is(err, ErrExhausted) {
		t.Errorf("Leap on absorbed chain returned %v", err)
	}
}

func TestLeapStateIsCopy(t *testing.T) {
	net := deathNetwork(t, 1)
	initial := []int{5}
	sim, err := NewLeapSimulator(net, initial, rng.New(1), LeapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	initial[0] = 99
	if sim.Count(0) != 5 {
		t.Error("simulator aliased the initial state")
	}
	view := sim.State()
	view[0] = -3
	if sim.Count(0) != 5 {
		t.Error("State() exposed internal state")
	}
}

func TestLeapPureDeathReachesZero(t *testing.T) {
	net := deathNetwork(t, 1)
	sim, err := NewLeapSimulator(net, []int{50000}, rng.New(3), LeapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunLeap(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Absorbed || sim.Count(0) != 0 {
		t.Errorf("pure death did not absorb: %+v, count %d", res, sim.Count(0))
	}
	if sim.Leaps() == 0 {
		t.Error("no tau-leaps taken on a large population; leaping is not engaging")
	}
}

func TestLeapImmigrationDeathStationaryMean(t *testing.T) {
	// ∅→X at rate λ, X→∅ per-capita μ: stationary Poisson(λ/μ).
	// The tau-leaping trajectory should hover around the same mean.
	const lambda = 500.0
	const mu = 1.0
	net := mustNetwork(t, "X")
	net.MustAddReaction(Reaction{Name: "in", Products: []Species{0}, Rate: lambda})
	net.MustAddReaction(Reaction{Name: "out", Reactants: []Species{0}, Rate: mu})
	sim, err := NewLeapSimulator(net, []int{0}, rng.New(5), LeapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm up past the relaxation time (~1/mu), then sample.
	if _, err := sim.RunLeap(func([]int) bool { return sim.Time() > 10 }, 0); err != nil {
		t.Fatal(err)
	}
	var acc stats.Running
	for sim.Time() < 200 {
		if err := sim.Leap(); err != nil {
			t.Fatal(err)
		}
		acc.Add(float64(sim.Count(0)))
	}
	want := lambda / mu
	if math.Abs(acc.Mean()-want)/want > 0.05 {
		t.Errorf("stationary mean %v, want ~%v", acc.Mean(), want)
	}
}

func TestLeapMatchesExactExtinctionTime(t *testing.T) {
	// Logistic death: X→∅ at per-capita δ plus X+X→X at rate γ. Compare
	// mean extinction times between the exact simulator and tau-leaping.
	if testing.Short() {
		t.Skip("statistical test")
	}
	build := func() *Network {
		net := mustNetwork(t, "X")
		net.MustAddReaction(Reaction{Name: "death", Reactants: []Species{0}, Rate: 1})
		net.MustAddReaction(Reaction{Name: "crowd", Reactants: []Species{0, 0}, Products: []Species{0}, Rate: 0.01})
		return net
	}
	const n0 = 2000
	const trials = 200

	var exactAcc, leapAcc stats.Running
	srcExact := rng.New(7)
	for i := 0; i < trials; i++ {
		sim, err := NewSimulator(build(), []int{n0}, srcExact)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.RunTime(nil, 0, 0, nil); err != nil {
			t.Fatal(err)
		}
		exactAcc.Add(sim.Time())
	}
	srcLeap := rng.New(9)
	for i := 0; i < trials; i++ {
		sim, err := NewLeapSimulator(build(), []int{n0}, srcLeap, LeapOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.RunLeap(nil, 0); err != nil {
			t.Fatal(err)
		}
		leapAcc.Add(sim.Time())
	}
	diff := math.Abs(exactAcc.Mean() - leapAcc.Mean())
	tol := 5*(exactAcc.StdErr()+leapAcc.StdErr()) + 0.05*exactAcc.Mean()
	if diff > tol {
		t.Errorf("mean extinction: exact %v vs leap %v (tol %v)", exactAcc.Mean(), leapAcc.Mean(), tol)
	}
}

func TestLeapIsFasterThanExactPerEvent(t *testing.T) {
	// Sanity: on a large population, tau-leaping must cover the same
	// simulated time in far fewer iterations than one-per-event.
	net := mustNetwork(t, "X")
	net.MustAddReaction(Reaction{Name: "birth", Reactants: []Species{0}, Products: []Species{0, 0}, Rate: 1})
	net.MustAddReaction(Reaction{Name: "crowd", Reactants: []Species{0, 0}, Products: []Species{0}, Rate: 0.001})
	sim, err := NewLeapSimulator(net, []int{1000}, rng.New(11), LeapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunLeap(func([]int) bool { return sim.Time() >= 5 }, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The equilibrium population is ~1000 with total propensity ~2000/s:
	// exact simulation would take ~10000 events for 5 time units.
	if res.Steps > 3000 {
		t.Errorf("tau-leaping took %d iterations; not accelerating", res.Steps)
	}
}
