package crn

import (
	"errors"
	"fmt"
	"math"

	"lvmajority/internal/rng"
)

// ErrExhausted reports that the chain reached a state with zero total
// propensity (every reaction channel is dead), so no further event can occur.
var ErrExhausted = errors.New("crn: zero total propensity, chain is absorbed")

// Simulator runs exact stochastic simulation of a Network. It implements
// both the discrete-time jump chain (Step) and Gillespie's direct method in
// continuous time (StepTime). A Simulator is not safe for concurrent use.
//
// Propensities are cached incrementally: after firing reaction r only the
// channels in net.Dependents(r) are recomputed. Networks with at most
// denseTotalThreshold reactions resum the cached array on every pick, which
// keeps the simulator bit-for-bit identical to the naive direct method;
// larger networks maintain a running total with drift-controlled periodic
// resummation and sample through a Fenwick prefix tree in O(log R).
type Simulator struct {
	net   *Network
	state []int
	src   *rng.Source

	time  float64
	steps int

	// props caches the per-reaction propensities of the current state.
	props []float64
	// deps is the network's dependency graph, captured at construction.
	deps [][]int
	// dense selects the small-network total strategy (see kernel.go).
	dense bool
	// total is the running total propensity (sparse mode only).
	total float64
	// sinceResum counts incremental updates since the last exact
	// resummation (sparse mode only).
	sinceResum int
	// tree is the sampling tree (sparse mode only).
	tree propTree
}

// NewSimulator creates a simulator over net starting from the given initial
// state, drawing randomness from src. The initial state is copied. It
// returns an error on length mismatch or negative counts.
func NewSimulator(net *Network, initial []int, src *rng.Source) (*Simulator, error) {
	if len(initial) != net.NumSpecies() {
		return nil, fmt.Errorf("crn: initial state has %d species, network has %d", len(initial), net.NumSpecies())
	}
	for i, x := range initial {
		if x < 0 {
			return nil, fmt.Errorf("crn: negative initial count %d for species %s", x, net.SpeciesName(Species(i)))
		}
	}
	if src == nil {
		return nil, fmt.Errorf("crn: nil random source")
	}
	state := make([]int, len(initial))
	copy(state, initial)
	sim := &Simulator{
		net:   net,
		state: state,
		src:   src,
		props: make([]float64, net.NumReactions()),
		deps:  net.dependencyGraph(),
		dense: net.NumReactions() <= denseTotalThreshold,
	}
	sim.refill()
	return sim, nil
}

// refill recomputes every cached propensity from the current state and, in
// sparse mode, rebuilds the running total and sampling tree.
func (sim *Simulator) refill() {
	for r := range sim.props {
		sim.props[r] = sim.net.Propensity(r, sim.state)
	}
	if !sim.dense {
		sim.resum()
	}
}

// resum recomputes the sparse running total and tree from the cached
// propensities, clearing accumulated floating-point drift. It does not
// recompute any propensity.
func (sim *Simulator) resum() {
	var total float64
	for _, p := range sim.props {
		total += p
	}
	sim.total = total
	sim.tree.rebuild(sim.props)
	sim.sinceResum = 0
}

// State returns the current state. The returned slice is a copy.
func (sim *Simulator) State() []int {
	out := make([]int, len(sim.state))
	copy(out, sim.state)
	return out
}

// StateView returns the live state slice without copying. Callers must not
// modify or retain it past the next Step, StepTime, or Reset call.
func (sim *Simulator) StateView() []int { return sim.state }

// Reset returns the simulator to the given initial state with a fresh
// random stream, reusing its buffers: the time and step counters restart at
// zero. It returns an error on length mismatch or negative counts.
func (sim *Simulator) Reset(initial []int, src *rng.Source) error {
	if len(initial) != len(sim.state) {
		return fmt.Errorf("crn: initial state has %d species, network has %d", len(initial), len(sim.state))
	}
	for i, x := range initial {
		if x < 0 {
			return fmt.Errorf("crn: negative initial count %d for species %s", x, sim.net.SpeciesName(Species(i)))
		}
	}
	if src == nil {
		return fmt.Errorf("crn: nil random source")
	}
	copy(sim.state, initial)
	sim.src = src
	sim.time = 0
	sim.steps = 0
	sim.refill()
	return nil
}

// Count returns the current count of species s.
func (sim *Simulator) Count(s Species) int { return sim.state[s] }

// Time returns the accumulated continuous time (advanced only by StepTime).
func (sim *Simulator) Time() float64 { return sim.time }

// Steps returns the number of reactions fired so far.
func (sim *Simulator) Steps() int { return sim.steps }

// pick samples the next reaction index proportionally to the cached
// propensities, or returns ErrExhausted when the total propensity is zero.
// It also returns the total propensity for holding-time draws.
//
//lint:hotpath
func (sim *Simulator) pick() (int, float64, error) {
	if sim.dense {
		// Resumming the cached array in index order reproduces the
		// naive direct method's floating-point total exactly.
		var total float64
		for _, p := range sim.props {
			total += p
		}
		if total <= 0 {
			return 0, 0, ErrExhausted
		}
		u := sim.src.Float64() * total
		r := selectChannel(sim.props, u)
		if r < 0 {
			return 0, 0, ErrExhausted
		}
		return r, total, nil
	}
	if sim.sinceResum >= resumInterval || sim.total <= 0 {
		sim.resum()
		if sim.total <= 0 {
			return 0, 0, ErrExhausted
		}
	}
	u := sim.src.Float64() * sim.total
	r := sim.tree.sample(sim.props, u)
	if r < 0 {
		// The running total drifted positive over an all-zero state.
		sim.resum()
		return 0, 0, ErrExhausted
	}
	return r, sim.total, nil
}

// fire applies reaction r and incrementally refreshes the propensities of
// the channels it may have changed.
//
//lint:hotpath
func (sim *Simulator) fire(r int) error {
	if err := sim.net.Apply(r, sim.state); err != nil {
		return err
	}
	for _, dep := range sim.deps[r] {
		p := sim.net.Propensity(dep, sim.state)
		if old := sim.props[dep]; p != old {
			sim.props[dep] = p
			if !sim.dense {
				sim.total += p - old
				sim.tree.add(dep, p-old)
			}
		}
	}
	if !sim.dense {
		sim.sinceResum++
	}
	sim.steps++
	return nil
}

// Step advances the discrete-time jump chain by one reaction and returns the
// index of the fired reaction. It returns ErrExhausted when the chain is
// absorbed.
func (sim *Simulator) Step() (int, error) {
	r, _, err := sim.pick()
	if err != nil {
		return 0, err
	}
	if err := sim.fire(r); err != nil {
		// Unreachable for mass-action propensities: a reaction with
		// insufficient reactants has zero propensity and cannot be
		// picked.
		return 0, err
	}
	return r, nil
}

// StepTime advances the continuous-time chain by one reaction: it draws an
// exponential holding time at the total-propensity rate, then fires a
// reaction chosen by the direct method. It returns the fired reaction index
// and the holding time.
func (sim *Simulator) StepTime() (reaction int, hold float64, err error) {
	r, total, err := sim.pick()
	if err != nil {
		return 0, 0, err
	}
	hold = sim.src.Exp(total)
	if err := sim.fire(r); err != nil {
		return 0, 0, err
	}
	sim.time += hold
	return r, hold, nil
}

// RunResult summarizes a Run invocation.
type RunResult struct {
	// Steps is the number of reactions fired during this Run call.
	Steps int
	// Absorbed reports whether the chain hit zero total propensity.
	Absorbed bool
	// Stopped reports whether the stop predicate ended the run.
	Stopped bool
}

// Run fires jump-chain steps until the stop predicate returns true, the
// chain is absorbed, or maxSteps reactions have fired (maxSteps <= 0 means
// no limit). The predicate sees the live state slice and must not modify or
// retain it. onEvent, if non-nil, is invoked with each fired reaction index
// after it is applied.
func (sim *Simulator) Run(stop func(state []int) bool, maxSteps int, onEvent func(reaction int)) (RunResult, error) {
	var res RunResult
	if stop != nil && stop(sim.state) {
		res.Stopped = true
		return res, nil
	}
	for maxSteps <= 0 || res.Steps < maxSteps {
		r, err := sim.Step()
		if errors.Is(err, ErrExhausted) {
			res.Absorbed = true
			return res, nil
		}
		if err != nil {
			return res, err
		}
		res.Steps++
		if onEvent != nil {
			onEvent(r)
		}
		if stop != nil && stop(sim.state) {
			res.Stopped = true
			return res, nil
		}
	}
	return res, nil
}

// RunTime is Run for the continuous-time chain, stopping additionally when
// the accumulated time exceeds maxTime (maxTime <= 0 or +Inf means no time
// limit).
func (sim *Simulator) RunTime(stop func(state []int) bool, maxTime float64, maxSteps int, onEvent func(reaction int, hold float64)) (RunResult, error) {
	var res RunResult
	if maxTime <= 0 {
		maxTime = math.Inf(1)
	}
	if stop != nil && stop(sim.state) {
		res.Stopped = true
		return res, nil
	}
	for (maxSteps <= 0 || res.Steps < maxSteps) && sim.time < maxTime {
		r, hold, err := sim.StepTime()
		if errors.Is(err, ErrExhausted) {
			res.Absorbed = true
			return res, nil
		}
		if err != nil {
			return res, err
		}
		res.Steps++
		if onEvent != nil {
			onEvent(r, hold)
		}
		if stop != nil && stop(sim.state) {
			res.Stopped = true
			return res, nil
		}
	}
	return res, nil
}
