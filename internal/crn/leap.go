package crn

import (
	"fmt"
	"math"

	"lvmajority/internal/rng"
)

// LeapOptions configures tau-leaping.
type LeapOptions struct {
	// Epsilon is the relative propensity-change tolerance of the Cao–
	// Gillespie–Petzold step selector (default 0.03).
	Epsilon float64
	// ExactThreshold: when the selected leap would advance the chain by
	// fewer than this many expected reactions, the simulator falls back
	// to exact SSA steps (default 10).
	ExactThreshold float64
	// MaxLeaps caps the number of leaps in RunLeap (0 = 1e7).
	MaxLeaps int
}

func (o *LeapOptions) normalize() {
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		o.Epsilon = 0.03
	}
	if o.ExactThreshold <= 0 {
		o.ExactThreshold = 10
	}
	if o.MaxLeaps <= 0 {
		o.MaxLeaps = 10_000_000
	}
}

// LeapSimulator runs approximate accelerated stochastic simulation of a
// Network using explicit tau-leaping (Gillespie 2001) with the Cao–
// Gillespie–Petzold (2006) step-size selector, falling back to exact SSA
// steps when leaping would be slower or unsafe. Unlike Simulator it trades
// exactness for speed; its per-time-unit moments converge to the exact
// chain's as Epsilon → 0.
type LeapSimulator struct {
	net   *Network
	state []int
	src   *rng.Source
	opts  LeapOptions

	time  float64
	leaps int
	exact int

	props []float64
	// hor[s] is the highest order of any reaction in which species s
	// appears as a reactant, used by the step selector's g_i factor.
	hor []int

	// delta is scratch space for per-leap species changes.
	delta []int
	// inner is the reusable exact simulator for the SSA fallback.
	inner *Simulator
}

// NewLeapSimulator creates a tau-leaping simulator.
func NewLeapSimulator(net *Network, initial []int, src *rng.Source, opts LeapOptions) (*LeapSimulator, error) {
	if len(initial) != net.NumSpecies() {
		return nil, fmt.Errorf("crn: initial state has %d species, network has %d", len(initial), net.NumSpecies())
	}
	for i, x := range initial {
		if x < 0 {
			return nil, fmt.Errorf("crn: negative initial count %d for species %s", x, net.SpeciesName(Species(i)))
		}
	}
	if src == nil {
		return nil, fmt.Errorf("crn: nil random source")
	}
	opts.normalize()
	state := make([]int, len(initial))
	copy(state, initial)

	hor := make([]int, net.NumSpecies())
	for r := 0; r < net.NumReactions(); r++ {
		order := len(net.Reaction(r).Reactants)
		for _, s := range net.Reaction(r).Reactants {
			if order > hor[s] {
				hor[s] = order
			}
		}
	}
	return &LeapSimulator{
		net:   net,
		state: state,
		src:   src,
		opts:  opts,
		props: make([]float64, net.NumReactions()),
		hor:   hor,
		delta: make([]int, len(state)),
	}, nil
}

// State returns a copy of the current state.
func (sim *LeapSimulator) State() []int {
	out := make([]int, len(sim.state))
	copy(out, sim.state)
	return out
}

// StateView returns the live state slice without copying. Callers must not
// modify or retain it past the next Leap or Reset call.
func (sim *LeapSimulator) StateView() []int { return sim.state }

// Reset returns the simulator to the given initial state with a fresh
// random stream, reusing its buffers: the clock and leap/fallback counters
// restart at zero.
func (sim *LeapSimulator) Reset(initial []int, src *rng.Source) error {
	if len(initial) != len(sim.state) {
		return fmt.Errorf("crn: initial state has %d species, network has %d", len(initial), len(sim.state))
	}
	for i, x := range initial {
		if x < 0 {
			return fmt.Errorf("crn: negative initial count %d for species %s", x, sim.net.SpeciesName(Species(i)))
		}
	}
	if src == nil {
		return fmt.Errorf("crn: nil random source")
	}
	copy(sim.state, initial)
	sim.src = src
	sim.time = 0
	sim.leaps = 0
	sim.exact = 0
	return nil
}

// Count returns the current count of species s.
func (sim *LeapSimulator) Count(s Species) int { return sim.state[s] }

// Time returns the simulated time.
func (sim *LeapSimulator) Time() float64 { return sim.time }

// Leaps returns the number of tau-leaps taken.
func (sim *LeapSimulator) Leaps() int { return sim.leaps }

// ExactSteps returns the number of exact SSA fallback steps taken.
func (sim *LeapSimulator) ExactSteps() int { return sim.exact }

// selectTau implements the Cao–Gillespie–Petzold step selector: the largest
// tau for which no propensity is expected to change by more than epsilon
// relative (bounded below by per-species count scales).
func (sim *LeapSimulator) selectTau(total float64) float64 {
	eps := sim.opts.Epsilon
	tau := math.Inf(1)
	for s := 0; s < sim.net.NumSpecies(); s++ {
		x := sim.state[s]
		if x == 0 || sim.hor[s] == 0 {
			continue
		}
		// g_i per CGP: 1st order → 1; 2nd order → 2 (2 + 1/(x−1) for
		// the dimerizing case — we use the slightly conservative
		// dimer form whenever a second-order self-reaction exists);
		// 3rd order → 3 (coarse, conservative enough).
		g := float64(sim.hor[s])
		if sim.hor[s] >= 2 && x > 1 {
			g = float64(sim.hor[s]) + 1/float64(x-1)
		}
		// Mean and variance of the one-leap change of species s.
		var mu, sigma2 float64
		for r := 0; r < sim.net.NumReactions(); r++ {
			d := float64(sim.net.Delta(r, Species(s)))
			if d == 0 {
				continue
			}
			mu += d * sim.props[r]
			sigma2 += d * d * sim.props[r]
		}
		bound := math.Max(eps*float64(x)/g, 1)
		if mu != 0 {
			if t := bound / math.Abs(mu); t < tau {
				tau = t
			}
		}
		if sigma2 != 0 {
			if t := bound * bound / sigma2; t < tau {
				tau = t
			}
		}
	}
	if math.IsInf(tau, 1) {
		// No species constrains the leap; advance by one expected
		// reaction at a time.
		tau = 1 / total
	}
	return tau
}

// Leap advances the chain by one tau-leap (or a batch of exact fallback
// steps when leaping is not profitable). It returns ErrExhausted when the
// total propensity is zero.
func (sim *LeapSimulator) Leap() error {
	var total float64
	for r := range sim.props {
		p := sim.net.Propensity(r, sim.state)
		sim.props[r] = p
		total += p
	}
	if total <= 0 {
		return ErrExhausted
	}

	tau := sim.selectTau(total)
	if tau*total < sim.opts.ExactThreshold {
		// Leaping would fire only a handful of reactions: take that
		// many exact steps instead (the standard fallback rule). The
		// inner exact simulator is reused across fallbacks so the hot
		// path stays allocation-free.
		if sim.inner == nil {
			inner, err := NewSimulator(sim.net, sim.state, sim.src)
			if err != nil {
				return err
			}
			sim.inner = inner
		} else if err := sim.inner.Reset(sim.state, sim.src); err != nil {
			return err
		}
		steps := int(sim.opts.ExactThreshold)
		for i := 0; i < steps; i++ {
			_, hold, err := sim.inner.StepTime()
			if err == ErrExhausted {
				break
			}
			if err != nil {
				return err
			}
			sim.time += hold
			sim.exact++
		}
		copy(sim.state, sim.inner.state)
		return nil
	}

	// Attempt the leap, halving tau on negative excursions.
	for attempt := 0; attempt < 64; attempt++ {
		if ok := sim.tryLeap(tau); ok {
			sim.time += tau
			sim.leaps++
			return nil
		}
		tau /= 2
	}
	return fmt.Errorf("crn: tau-leap failed to find a non-negative step at t=%v", sim.time)
}

// tryLeap samples Poisson firing counts for every channel at step tau and
// applies them if no species goes negative. It reports success.
func (sim *LeapSimulator) tryLeap(tau float64) bool {
	delta := sim.delta
	for s := range delta {
		delta[s] = 0
	}
	for r := range sim.props {
		if sim.props[r] <= 0 {
			continue
		}
		k := sim.src.Poisson(sim.props[r] * tau)
		if k == 0 {
			continue
		}
		for s := range delta {
			delta[s] += k * sim.net.Delta(r, Species(s))
		}
	}
	for s, d := range delta {
		if sim.state[s]+d < 0 {
			return false
		}
	}
	for s, d := range delta {
		sim.state[s] += d
	}
	return true
}

// RunLeap advances until the stop predicate holds, the chain is absorbed,
// maxTime is exceeded, or the leap budget runs out.
func (sim *LeapSimulator) RunLeap(stop func(state []int) bool, maxTime float64) (RunResult, error) {
	var res RunResult
	if maxTime <= 0 {
		maxTime = math.Inf(1)
	}
	if stop != nil && stop(sim.state) {
		res.Stopped = true
		return res, nil
	}
	for iter := 0; iter < sim.opts.MaxLeaps && sim.time < maxTime; iter++ {
		err := sim.Leap()
		if err == ErrExhausted {
			res.Absorbed = true
			return res, nil
		}
		if err != nil {
			return res, err
		}
		res.Steps++
		if stop != nil && stop(sim.state) {
			res.Stopped = true
			return res, nil
		}
	}
	return res, nil
}
