package crn

import (
	"reflect"
	"testing"
)

// FuzzParse feeds arbitrary text to the parser. It must never panic; when
// it accepts an input, the parsed network must survive a Format/Parse round
// trip with identical species, stoichiometry, and rates.
func FuzzParse(f *testing.F) {
	f.Add("species: X0 X1\nX0 + X1 -> 0 @ 0.5\n")
	f.Add("A -> 2 A @ 1\nA -> 0 @ 1.5 # death\n")
	f.Add("2X -> X @ 3\n∅ -> X @ 1\n")
	f.Add("species:\n")
	f.Add("X @ ->")
	f.Add("# only a comment\n")
	f.Fuzz(func(t *testing.T, text string) {
		net, err := Parse(text)
		if err != nil {
			return
		}
		back, err := Parse(Format(net))
		if err != nil {
			t.Fatalf("round trip rejected accepted network: %v\ninput: %q\nformatted:\n%s",
				err, text, Format(net))
		}
		if back.NumSpecies() != net.NumSpecies() || back.NumReactions() != net.NumReactions() {
			t.Fatalf("round trip changed shape for %q", text)
		}
		for i := 0; i < net.NumSpecies(); i++ {
			if net.SpeciesName(Species(i)) != back.SpeciesName(Species(i)) {
				t.Fatalf("round trip renamed species %d for %q", i, text)
			}
		}
		for r := 0; r < net.NumReactions(); r++ {
			a, b := net.Reaction(r), back.Reaction(r)
			if !reflect.DeepEqual(a.Reactants, b.Reactants) ||
				!reflect.DeepEqual(a.Products, b.Products) || a.Rate != b.Rate {
				t.Fatalf("round trip changed reaction %d for %q", r, text)
			}
		}
	})
}
