package crn

import (
	"errors"
	"math"
	"testing"

	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

func deathNetwork(t *testing.T, delta float64) *Network {
	t.Helper()
	net := mustNetwork(t, "X")
	net.MustAddReaction(Reaction{Name: "death", Reactants: []Species{0}, Rate: delta})
	return net
}

func TestNewSimulatorValidation(t *testing.T) {
	net := deathNetwork(t, 1)
	if _, err := NewSimulator(net, []int{1, 2}, rng.New(1)); err == nil {
		t.Error("wrong state length did not error")
	}
	if _, err := NewSimulator(net, []int{-1}, rng.New(1)); err == nil {
		t.Error("negative count did not error")
	}
	if _, err := NewSimulator(net, []int{1}, nil); err == nil {
		t.Error("nil source did not error")
	}
}

func TestSimulatorStateIsCopy(t *testing.T) {
	net := deathNetwork(t, 1)
	initial := []int{5}
	sim, err := NewSimulator(net, initial, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	initial[0] = 99
	if sim.Count(0) != 5 {
		t.Error("simulator aliased the initial state")
	}
	got := sim.State()
	got[0] = -7
	if sim.Count(0) != 5 {
		t.Error("State() exposed internal state")
	}
}

func TestPureDeathJumpChainStepCount(t *testing.T) {
	// A pure death chain from n fires exactly n reactions before
	// absorption, deterministically.
	net := deathNetwork(t, 2.5)
	const n = 137
	sim, err := NewSimulator(net, []int{n}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Absorbed {
		t.Error("pure death chain did not absorb")
	}
	if res.Steps != n {
		t.Errorf("steps = %d, want %d", res.Steps, n)
	}
	if sim.Count(0) != 0 {
		t.Errorf("final count = %d, want 0", sim.Count(0))
	}
}

func TestPureDeathExtinctionTimeMean(t *testing.T) {
	// Continuous time: E[T] = H_n / δ for per-capita death rate δ.
	const n = 50
	const delta = 2.0
	const trials = 3000
	var acc stats.Running
	src := rng.New(11)
	for i := 0; i < trials; i++ {
		net := deathNetwork(t, delta)
		sim, err := NewSimulator(net, []int{n}, src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.RunTime(nil, 0, 0, nil); err != nil {
			t.Fatal(err)
		}
		acc.Add(sim.Time())
	}
	want := stats.HarmonicNumber(n) / delta
	if math.Abs(acc.Mean()-want) > 5*acc.StdErr()+0.01*want {
		t.Errorf("mean extinction time = %v, want ~%v", acc.Mean(), want)
	}
}

func TestStepOnAbsorbedChain(t *testing.T) {
	net := deathNetwork(t, 1)
	sim, err := NewSimulator(net, []int{0}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Step(); !errors.Is(err, ErrExhausted) {
		t.Errorf("Step on absorbed chain returned %v, want ErrExhausted", err)
	}
	if _, _, err := sim.StepTime(); !errors.Is(err, ErrExhausted) {
		t.Errorf("StepTime on absorbed chain returned %v, want ErrExhausted", err)
	}
}

func TestRunStopPredicate(t *testing.T) {
	net := deathNetwork(t, 1)
	sim, err := NewSimulator(net, []int{10}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(func(state []int) bool { return state[0] <= 4 }, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || res.Absorbed {
		t.Errorf("result = %+v, want stopped", res)
	}
	if sim.Count(0) != 4 {
		t.Errorf("count = %d, want 4", sim.Count(0))
	}
	if res.Steps != 6 {
		t.Errorf("steps = %d, want 6", res.Steps)
	}
}

func TestRunStopImmediately(t *testing.T) {
	net := deathNetwork(t, 1)
	sim, err := NewSimulator(net, []int{10}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(func([]int) bool { return true }, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || res.Steps != 0 {
		t.Errorf("result = %+v, want immediate stop with 0 steps", res)
	}
}

func TestRunMaxSteps(t *testing.T) {
	net := mustNetwork(t, "X")
	// Birth-only network never absorbs.
	net.MustAddReaction(Reaction{Name: "birth", Reactants: []Species{0}, Products: []Species{0, 0}, Rate: 1})
	sim, err := NewSimulator(net, []int{1}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(nil, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 100 || res.Stopped || res.Absorbed {
		t.Errorf("result = %+v, want exactly 100 uneventful steps", res)
	}
	if sim.Count(0) != 101 {
		t.Errorf("count = %d, want 101", sim.Count(0))
	}
}

func TestRunTimeMaxTime(t *testing.T) {
	net := mustNetwork(t, "X")
	net.MustAddReaction(Reaction{Name: "birth", Reactants: []Species{0}, Products: []Species{0, 0}, Rate: 1})
	sim, err := NewSimulator(net, []int{1}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	const maxTime = 2.0
	if _, err := sim.RunTime(nil, maxTime, 0, nil); err != nil {
		t.Fatal(err)
	}
	if sim.Time() < maxTime {
		t.Errorf("time = %v, want >= %v", sim.Time(), maxTime)
	}
	// Yule process at rate 1: E[X_t] = e^t, so the count should be modest
	// but above 1. Mostly this checks the loop terminates.
	if sim.Count(0) < 1 {
		t.Errorf("count = %d, want >= 1", sim.Count(0))
	}
}

func TestOnEventCallback(t *testing.T) {
	net := mustNetwork(t, "A", "B")
	net.MustAddReaction(Reaction{Name: "a-death", Reactants: []Species{0}, Rate: 1})
	net.MustAddReaction(Reaction{Name: "b-death", Reactants: []Species{1}, Rate: 1})
	sim, err := NewSimulator(net, []int{5, 5}, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 2)
	res, err := sim.Run(nil, 0, func(r int) { counts[r]++ })
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 5 || counts[1] != 5 {
		t.Errorf("event counts = %v, want [5 5]", counts)
	}
	if res.Steps != 10 {
		t.Errorf("steps = %d, want 10", res.Steps)
	}
}

func TestBirthDeathEquilibriumImmigration(t *testing.T) {
	// Immigration-death process ∅→X at rate λ, X→∅ at per-capita rate μ
	// has stationary distribution Poisson(λ/μ). Check the long-run mean.
	const lambda = 20.0
	const mu = 1.0
	net := mustNetwork(t, "X")
	net.MustAddReaction(Reaction{Name: "in", Products: []Species{0}, Rate: lambda})
	net.MustAddReaction(Reaction{Name: "out", Reactants: []Species{0}, Rate: mu})
	sim, err := NewSimulator(net, []int{0}, rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	// Warm up, then sample.
	if _, err := sim.Run(nil, 2000, nil); err != nil {
		t.Fatal(err)
	}
	var acc stats.Running
	for i := 0; i < 30000; i++ {
		if _, err := sim.Step(); err != nil {
			t.Fatal(err)
		}
		acc.Add(float64(sim.Count(0)))
	}
	// The jump-chain average is not exactly the continuous-time one, but
	// for this process the count hovers around λ/μ; allow a wide band.
	if acc.Mean() < 15 || acc.Mean() > 25 {
		t.Errorf("long-run mean count = %v, want ~20", acc.Mean())
	}
}

func TestJumpChainDistributionMatchesPropensities(t *testing.T) {
	// Two competing death channels at rates 1 and 3 on the same species:
	// channel 2 should win ~75% of first steps.
	net := mustNetwork(t, "X")
	net.MustAddReaction(Reaction{Name: "slow", Reactants: []Species{0}, Rate: 1})
	net.MustAddReaction(Reaction{Name: "fast", Reactants: []Species{0}, Rate: 3})
	src := rng.New(55)
	const trials = 40000
	fast := 0
	for i := 0; i < trials; i++ {
		sim, err := NewSimulator(net, []int{1}, src)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sim.Step()
		if err != nil {
			t.Fatal(err)
		}
		if r == 1 {
			fast++
		}
	}
	got := float64(fast) / trials
	if math.Abs(got-0.75) > 0.01 {
		t.Errorf("fast channel frequency = %v, want ~0.75", got)
	}
}
