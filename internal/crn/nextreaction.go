package crn

import (
	"container/heap"
	"fmt"
	"math"

	"lvmajority/internal/rng"
)

// NRMSimulator implements the Gibson–Bruck next-reaction method: an exact
// continuous-time simulator that keeps one absolute firing time per channel
// in an indexed priority queue and only recomputes the propensities of
// channels affected by the fired reaction (via a dependency graph). For
// networks with many channels it does O(D·log R) work per event, where D is
// the dependency out-degree, versus the direct method's O(R).
//
// It samples the same continuous-time Markov chain as Simulator.StepTime.
type NRMSimulator struct {
	net   *Network
	state []int
	src   *rng.Source

	time  float64
	steps int

	props []float64
	// queue is the indexed min-heap of (absolute next firing time,
	// reaction).
	queue nrmHeap
	// pos[r] is the heap position of reaction r.
	pos []int
	// deps[r] lists the reactions whose propensity can change when r
	// fires (including r itself).
	deps [][]int
}

type nrmEntry struct {
	time     float64
	reaction int
}

type nrmHeap struct {
	entries []nrmEntry
	pos     []int
}

func (h *nrmHeap) Len() int           { return len(h.entries) }
func (h *nrmHeap) Less(i, j int) bool { return h.entries[i].time < h.entries[j].time }
func (h *nrmHeap) Swap(i, j int) {
	h.entries[i], h.entries[j] = h.entries[j], h.entries[i]
	h.pos[h.entries[i].reaction] = i
	h.pos[h.entries[j].reaction] = j
}
func (h *nrmHeap) Push(x any) {
	e := x.(nrmEntry)
	h.pos[e.reaction] = len(h.entries)
	h.entries = append(h.entries, e)
}
func (h *nrmHeap) Pop() any {
	old := h.entries
	e := old[len(old)-1]
	h.entries = old[:len(old)-1]
	return e
}

// NewNRMSimulator builds a next-reaction simulator.
func NewNRMSimulator(net *Network, initial []int, src *rng.Source) (*NRMSimulator, error) {
	if len(initial) != net.NumSpecies() {
		return nil, fmt.Errorf("crn: initial state has %d species, network has %d", len(initial), net.NumSpecies())
	}
	for i, x := range initial {
		if x < 0 {
			return nil, fmt.Errorf("crn: negative initial count %d for species %s", x, net.SpeciesName(Species(i)))
		}
	}
	if src == nil {
		return nil, fmt.Errorf("crn: nil random source")
	}
	state := make([]int, len(initial))
	copy(state, initial)

	nr := net.NumReactions()
	sim := &NRMSimulator{
		net:   net,
		state: state,
		src:   src,
		props: make([]float64, nr),
		deps:  net.dependencyGraph(),
	}
	sim.queue.pos = make([]int, nr)
	sim.queue.entries = make([]nrmEntry, 0, nr)
	for r := 0; r < nr; r++ {
		sim.props[r] = net.Propensity(r, sim.state)
		sim.queue.entries = append(sim.queue.entries, nrmEntry{
			time:     firingTime(0, sim.props[r], src),
			reaction: r,
		})
		sim.queue.pos[r] = r
	}
	heap.Init(&sim.queue)
	return sim, nil
}

// firingTime draws an absolute next firing time for a channel with the
// given propensity, measured from now.
func firingTime(now, prop float64, src *rng.Source) float64 {
	if prop <= 0 {
		return math.Inf(1)
	}
	return now + src.Exp(prop)
}

// State returns a copy of the current state.
func (sim *NRMSimulator) State() []int {
	out := make([]int, len(sim.state))
	copy(out, sim.state)
	return out
}

// StateView returns the live state slice without copying. Callers must not
// modify or retain it past the next Step or Reset call.
func (sim *NRMSimulator) StateView() []int { return sim.state }

// Reset returns the simulator to the given initial state with a fresh
// random stream, reusing its buffers: the clock restarts at zero and every
// channel draws a fresh firing time.
func (sim *NRMSimulator) Reset(initial []int, src *rng.Source) error {
	if len(initial) != len(sim.state) {
		return fmt.Errorf("crn: initial state has %d species, network has %d", len(initial), len(sim.state))
	}
	for i, x := range initial {
		if x < 0 {
			return fmt.Errorf("crn: negative initial count %d for species %s", x, sim.net.SpeciesName(Species(i)))
		}
	}
	if src == nil {
		return fmt.Errorf("crn: nil random source")
	}
	copy(sim.state, initial)
	sim.src = src
	sim.time = 0
	sim.steps = 0
	for r := range sim.props {
		sim.props[r] = sim.net.Propensity(r, sim.state)
		sim.queue.entries[r] = nrmEntry{
			time:     firingTime(0, sim.props[r], src),
			reaction: r,
		}
		sim.queue.pos[r] = r
	}
	heap.Init(&sim.queue)
	return nil
}

// Count returns the current count of species s.
func (sim *NRMSimulator) Count(s Species) int { return sim.state[s] }

// Time returns the simulated time.
func (sim *NRMSimulator) Time() float64 { return sim.time }

// Steps returns the number of reactions fired.
func (sim *NRMSimulator) Steps() int { return sim.steps }

// Step fires the next reaction. It returns ErrExhausted when no channel can
// ever fire again.
func (sim *NRMSimulator) Step() (int, error) {
	top := sim.queue.entries[0]
	if math.IsInf(top.time, 1) {
		return 0, ErrExhausted
	}
	r := top.reaction
	sim.time = top.time
	if err := sim.net.Apply(r, sim.state); err != nil {
		return 0, err
	}
	sim.steps++

	// Update the fired channel and its dependents. The fired channel
	// draws a fresh exponential; dependents could reuse their residual
	// clocks (the classical Gibson–Bruck rescaling), but redrawing is
	// also exact and keeps the implementation simple and allocation-free.
	for _, dep := range sim.deps[r] {
		sim.props[dep] = sim.net.Propensity(dep, sim.state)
		idx := sim.queue.pos[dep]
		sim.queue.entries[idx].time = firingTime(sim.time, sim.props[dep], sim.src)
		heap.Fix(&sim.queue, idx)
	}
	return r, nil
}

// Run fires reactions until the stop predicate holds, the chain is
// absorbed, or maxSteps reactions fire (maxSteps <= 0 = no limit).
func (sim *NRMSimulator) Run(stop func(state []int) bool, maxSteps int) (RunResult, error) {
	var res RunResult
	if stop != nil && stop(sim.state) {
		res.Stopped = true
		return res, nil
	}
	for maxSteps <= 0 || res.Steps < maxSteps {
		_, err := sim.Step()
		if err == ErrExhausted {
			res.Absorbed = true
			return res, nil
		}
		if err != nil {
			return res, err
		}
		res.Steps++
		if stop != nil && stop(sim.state) {
			res.Stopped = true
			return res, nil
		}
	}
	return res, nil
}
