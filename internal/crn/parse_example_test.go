package crn_test

import (
	"fmt"

	"lvmajority/internal/crn"
)

// Networks round-trip through the text format: Parse reads the DSL and
// Format writes it back with a pinned species order.
func ExampleParse() {
	net, err := crn.Parse(`
# Self-destructive Lotka-Volterra competition, one direction.
X0 -> 2 X0 @ 1
X0 + X1 -> 0 @ 0.5
`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Print(crn.Format(net))
	// Output:
	// species: X0 X1
	// X0 -> X0 + X0 @ 1
	// X0 + X1 -> 0 @ 0.5
}
