package crn

import (
	"math"
	"testing"
	"testing/quick"
)

func mustNetwork(t *testing.T, names ...string) *Network {
	t.Helper()
	net, err := NewNetwork(names...)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(); err == nil {
		t.Error("NewNetwork() with no species did not error")
	}
	if _, err := NewNetwork("A", "A"); err == nil {
		t.Error("duplicate species name did not error")
	}
	if _, err := NewNetwork(""); err == nil {
		t.Error("empty species name did not error")
	}
}

func TestSpeciesByName(t *testing.T) {
	net := mustNetwork(t, "X0", "X1")
	s, err := net.SpeciesByName("X1")
	if err != nil || s != 1 {
		t.Errorf("SpeciesByName(X1) = %v, %v; want 1, nil", s, err)
	}
	if _, err := net.SpeciesByName("nope"); err == nil {
		t.Error("unknown species did not error")
	}
	if got := net.SpeciesName(Species(99)); got != "?" {
		t.Errorf("SpeciesName(out of range) = %q, want ?", got)
	}
}

func TestAddReactionValidation(t *testing.T) {
	net := mustNetwork(t, "A", "B")
	cases := []struct {
		name string
		r    Reaction
	}{
		{"negative rate", Reaction{Reactants: []Species{0}, Rate: -1}},
		{"NaN rate", Reaction{Reactants: []Species{0}, Rate: math.NaN()}},
		{"too many reactants", Reaction{Reactants: []Species{0, 0, 0, 0}, Rate: 1}},
		{"unknown reactant", Reaction{Reactants: []Species{5}, Rate: 1}},
		{"unknown product", Reaction{Reactants: []Species{0}, Products: []Species{-1}, Rate: 1}},
	}
	for _, tc := range cases {
		if err := net.AddReaction(tc.r); err == nil {
			t.Errorf("%s: AddReaction did not error", tc.name)
		}
	}
	if net.NumReactions() != 0 {
		t.Errorf("invalid reactions were stored: %d", net.NumReactions())
	}
}

func TestDefaultName(t *testing.T) {
	net := mustNetwork(t, "A", "B")
	net.MustAddReaction(Reaction{Reactants: []Species{0, 1}, Products: []Species{1}, Rate: 1})
	if got := net.Reaction(0).Name; got != "A+B->B" {
		t.Errorf("default name = %q, want A+B->B", got)
	}
	net.MustAddReaction(Reaction{Products: []Species{0}, Rate: 1})
	if got := net.Reaction(1).Name; got != "∅->A" {
		t.Errorf("default name = %q, want ∅->A", got)
	}
}

func TestPropensityFormulas(t *testing.T) {
	net := mustNetwork(t, "X", "Y")
	net.MustAddReaction(Reaction{Name: "birth", Reactants: []Species{0}, Products: []Species{0, 0}, Rate: 2})
	net.MustAddReaction(Reaction{Name: "pair-cross", Reactants: []Species{0, 1}, Rate: 3})
	net.MustAddReaction(Reaction{Name: "pair-self", Reactants: []Species{0, 0}, Rate: 4})
	net.MustAddReaction(Reaction{Name: "triple", Reactants: []Species{0, 0, 0}, Rate: 6})
	net.MustAddReaction(Reaction{Name: "source", Rate: 5})

	state := []int{7, 3}
	cases := []struct {
		r    int
		want float64
	}{
		{0, 2 * 7},             // β·x
		{1, 3 * 7 * 3},         // α·x·y
		{2, 4 * 7 * 6 / 2},     // γ·x(x−1)/2
		{3, 6 * 7 * 6 * 5 / 6}, // k·x(x−1)(x−2)/6
		{4, 5},                 // constant source
	}
	for _, tc := range cases {
		if got := net.Propensity(tc.r, state); got != tc.want {
			t.Errorf("Propensity(%s) = %v, want %v", net.Reaction(tc.r).Name, got, tc.want)
		}
	}
}

func TestPropensityInsufficientCounts(t *testing.T) {
	net := mustNetwork(t, "X")
	net.MustAddReaction(Reaction{Name: "pair", Reactants: []Species{0, 0}, Rate: 1})
	net.MustAddReaction(Reaction{Name: "triple", Reactants: []Species{0, 0, 0}, Rate: 1})
	for _, state := range [][]int{{0}, {1}} {
		if got := net.Propensity(0, state); got != 0 {
			t.Errorf("pair propensity at x=%d is %v, want 0", state[0], got)
		}
	}
	if got := net.Propensity(1, []int{2}); got != 0 {
		t.Errorf("triple propensity at x=2 is %v, want 0", got)
	}
}

func TestPropensityNonNegativeProperty(t *testing.T) {
	net := mustNetwork(t, "A", "B")
	net.MustAddReaction(Reaction{Reactants: []Species{0, 1}, Rate: 1.5})
	net.MustAddReaction(Reaction{Reactants: []Species{0, 0}, Rate: 0.5})
	err := quick.Check(func(a, b uint8) bool {
		state := []int{int(a), int(b)}
		for r := 0; r < net.NumReactions(); r++ {
			if net.Propensity(r, state) < 0 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestTotalPropensityMatchesPaperPhi(t *testing.T) {
	// φ(x0, x1) = Σ_i (αi·x0·x1 + β·xi + δ·xi + γi·xi(xi−1)/2), Eq. §1.3.
	const (
		beta   = 1.25
		delta  = 0.75
		alpha0 = 0.5
		alpha1 = 1.5
		gamma0 = 0.25
		gamma1 = 2.0
	)
	net := mustNetwork(t, "X0", "X1")
	for i := Species(0); i < 2; i++ {
		other := 1 - i
		alpha := []float64{alpha0, alpha1}[i]
		gamma := []float64{gamma0, gamma1}[i]
		net.MustAddReaction(Reaction{Reactants: []Species{i}, Products: []Species{i, i}, Rate: beta})
		net.MustAddReaction(Reaction{Reactants: []Species{i}, Rate: delta})
		net.MustAddReaction(Reaction{Reactants: []Species{i, other}, Rate: alpha})
		net.MustAddReaction(Reaction{Reactants: []Species{i, i}, Rate: gamma})
	}
	for _, st := range [][2]int{{0, 0}, {1, 0}, {3, 5}, {10, 10}, {100, 1}} {
		x0, x1 := float64(st[0]), float64(st[1])
		want := alpha0*x0*x1 + alpha1*x0*x1 +
			(beta+delta)*(x0+x1) +
			gamma0*x0*(x0-1)/2 + gamma1*x1*(x1-1)/2
		got := net.TotalPropensity([]int{st[0], st[1]})
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("state %v: total propensity %v, want %v", st, got, want)
		}
	}
}

func TestApply(t *testing.T) {
	net := mustNetwork(t, "A", "B")
	net.MustAddReaction(Reaction{Name: "convert", Reactants: []Species{0}, Products: []Species{1, 1}, Rate: 1})
	state := []int{3, 0}
	if err := net.Apply(0, state); err != nil {
		t.Fatal(err)
	}
	if state[0] != 2 || state[1] != 2 {
		t.Errorf("state after convert = %v, want [2 2]", state)
	}
}

func TestApplyUnderflow(t *testing.T) {
	net := mustNetwork(t, "A")
	net.MustAddReaction(Reaction{Name: "die", Reactants: []Species{0}, Rate: 1})
	state := []int{0}
	if err := net.Apply(0, state); err == nil {
		t.Error("Apply below zero did not error")
	}
	if state[0] != 0 {
		t.Errorf("failed Apply modified state: %v", state)
	}
}

func TestDelta(t *testing.T) {
	net := mustNetwork(t, "A", "B")
	net.MustAddReaction(Reaction{Reactants: []Species{0, 0}, Products: []Species{0, 1}, Rate: 1})
	if got := net.Delta(0, 0); got != -1 {
		t.Errorf("Delta(A) = %d, want -1", got)
	}
	if got := net.Delta(0, 1); got != 1 {
		t.Errorf("Delta(B) = %d, want 1", got)
	}
}

func TestMustAddReactionPanics(t *testing.T) {
	net := mustNetwork(t, "A")
	defer func() {
		if recover() == nil {
			t.Error("MustAddReaction with bad reaction did not panic")
		}
	}()
	net.MustAddReaction(Reaction{Rate: -1})
}

func TestReactionDefensiveCopy(t *testing.T) {
	net := mustNetwork(t, "A", "B")
	reactants := []Species{0}
	net.MustAddReaction(Reaction{Reactants: reactants, Rate: 1})
	reactants[0] = 1
	if got := net.Reaction(0).Reactants[0]; got != 0 {
		t.Error("AddReaction aliased caller's reactant slice")
	}
}
