package crn

import (
	"testing"

	"lvmajority/internal/rng"
)

// lvBenchNetwork builds the two-species NSD Lotka–Volterra network used to
// compare the three simulation methods on identical dynamics.
func lvBenchNetwork(b *testing.B) *Network {
	b.Helper()
	net, err := NewNetwork("X0", "X1")
	if err != nil {
		b.Fatal(err)
	}
	for i := Species(0); i < 2; i++ {
		other := 1 - i
		net.MustAddReaction(Reaction{Reactants: []Species{i}, Products: []Species{i, i}, Rate: 1})
		net.MustAddReaction(Reaction{Reactants: []Species{i}, Rate: 1})
		net.MustAddReaction(Reaction{Reactants: []Species{i, other}, Products: []Species{i}, Rate: 1})
	}
	return net
}

// cascadeNetwork builds a cyclic unimolecular conversion network
// X_i → X_{i+1 mod m} with m channels. Counts are conserved, so the chain
// never absorbs — ideal for steady-state per-event measurement — and each
// reaction's dependency list has just three entries, so the incremental
// kernel recomputes 3 propensities per event where the naive direct method
// recomputes all m.
func cascadeNetwork(b testing.TB, m int) *Network {
	b.Helper()
	names := make([]string, m)
	for i := range names {
		names[i] = "X" + string(rune('A'+i/26)) + string(rune('a'+i%26))
	}
	net, err := NewNetwork(names...)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < m; i++ {
		net.MustAddReaction(Reaction{
			Reactants: []Species{Species(i)},
			Products:  []Species{Species((i + 1) % m)},
			Rate:      1 + float64(i%3)/4,
		})
	}
	return net
}

// BenchmarkIncrementalSSA compares the naive direct method (recompute and
// rescan every propensity per event, the pre-incremental Simulator) against
// the incremental-propensity kernel, one op per event on the steady-state
// 48-channel cascade at total count 10⁴. The incremental side takes the
// sparse path: dependency-graph recomputation, drift-controlled running
// total, Fenwick-tree sampling.
func BenchmarkIncrementalSSA(b *testing.B) {
	const m = 48
	initial := make([]int, m)
	for i := range initial {
		initial[i] = 10_000 / m
	}

	b.Run("naive", func(b *testing.B) {
		sim := newNaiveSimulator(cascadeNetwork(b, m), initial, rng.New(1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sim.step(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		sim, err := NewSimulator(cascadeNetwork(b, m), initial, rng.New(1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Step(); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The dense small-network path (byte-identical to naive): the
	// 5-channel Condon-style network, for the parity record.
	b.Run("incremental-small", func(b *testing.B) {
		net := condonLikeNetwork(b)
		sim, err := NewSimulator(net, []int{6000, 4000, 0}, rng.New(1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Step(); err != nil {
				b.StopTimer()
				if err := sim.Reset([]int{6000, 4000, 0}, rng.New(uint64(i))); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		}
	})
}

// BenchmarkDirectMethod measures the Gillespie direct method on a full
// LV consensus run (ablation baseline for the simulator design choices).
func BenchmarkDirectMethod(b *testing.B) {
	net := lvBenchNetwork(b)
	src := rng.New(1)
	stop := func(state []int) bool { return state[0] == 0 || state[1] == 0 }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim, err := NewSimulator(net, []int{600, 400}, src)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.RunTime(stop, 0, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNextReactionMethod measures the Gibson–Bruck simulator on the
// same dynamics.
func BenchmarkNextReactionMethod(b *testing.B) {
	net := lvBenchNetwork(b)
	src := rng.New(1)
	stop := func(state []int) bool { return state[0] == 0 || state[1] == 0 }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim, err := NewNRMSimulator(net, []int{600, 400}, src)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(stop, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTauLeaping measures the approximate tau-leaping simulator on the
// same dynamics.
func BenchmarkTauLeaping(b *testing.B) {
	net := lvBenchNetwork(b)
	src := rng.New(1)
	stop := func(state []int) bool { return state[0] == 0 || state[1] == 0 }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim, err := NewLeapSimulator(net, []int{600, 400}, src, LeapOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.RunLeap(stop, 0); err != nil {
			b.Fatal(err)
		}
	}
}
