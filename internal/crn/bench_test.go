package crn

import (
	"testing"

	"lvmajority/internal/rng"
)

// lvBenchNetwork builds the two-species NSD Lotka–Volterra network used to
// compare the three simulation methods on identical dynamics.
func lvBenchNetwork(b *testing.B) *Network {
	b.Helper()
	net, err := NewNetwork("X0", "X1")
	if err != nil {
		b.Fatal(err)
	}
	for i := Species(0); i < 2; i++ {
		other := 1 - i
		net.MustAddReaction(Reaction{Reactants: []Species{i}, Products: []Species{i, i}, Rate: 1})
		net.MustAddReaction(Reaction{Reactants: []Species{i}, Rate: 1})
		net.MustAddReaction(Reaction{Reactants: []Species{i, other}, Products: []Species{i}, Rate: 1})
	}
	return net
}

// BenchmarkDirectMethod measures the Gillespie direct method on a full
// LV consensus run (ablation baseline for the simulator design choices).
func BenchmarkDirectMethod(b *testing.B) {
	net := lvBenchNetwork(b)
	src := rng.New(1)
	stop := func(state []int) bool { return state[0] == 0 || state[1] == 0 }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim, err := NewSimulator(net, []int{600, 400}, src)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.RunTime(stop, 0, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNextReactionMethod measures the Gibson–Bruck simulator on the
// same dynamics.
func BenchmarkNextReactionMethod(b *testing.B) {
	net := lvBenchNetwork(b)
	src := rng.New(1)
	stop := func(state []int) bool { return state[0] == 0 || state[1] == 0 }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim, err := NewNRMSimulator(net, []int{600, 400}, src)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(stop, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTauLeaping measures the approximate tau-leaping simulator on the
// same dynamics.
func BenchmarkTauLeaping(b *testing.B) {
	net := lvBenchNetwork(b)
	src := rng.New(1)
	stop := func(state []int) bool { return state[0] == 0 || state[1] == 0 }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim, err := NewLeapSimulator(net, []int{600, 400}, src, LeapOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.RunLeap(stop, 0); err != nil {
			b.Fatal(err)
		}
	}
}
