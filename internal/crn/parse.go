package crn

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements a small text format for reaction networks so that
// networks can be stored in files, embedded in documentation, and fed to
// the cmd/crnrun tool. The grammar, line by line:
//
//	# comment                                 (also allowed after any line)
//	species: X0 X1 R                          (optional, at most once, first)
//	reactants -> products @ rate
//
// Each side of a reaction is a "+"-separated list of species terms; a term
// is a species name optionally preceded by an integer stoichiometric
// coefficient ("2 X0" means X0 + X0). The empty multiset is written "0" or
// "∅". Examples, defining the paper's self-destructive LV model (1):
//
//	species: X0 X1
//	X0 -> 2 X0 @ 1        # birth
//	X0 -> 0 @ 1           # death
//	X0 + X1 -> 0 @ 0.5    # interspecific competition, both die
//
// Without a species directive, species are numbered in order of first
// appearance. With one, referencing an undeclared species is an error,
// which catches typos in larger models.

// ParseError reports a syntax or validation error in the network text
// format, with the 1-based line it occurred on.
type ParseError struct {
	// Line is the 1-based line number.
	Line int
	// Msg describes the problem.
	Msg string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("crn: line %d: %s", e.Line, e.Msg)
}

// parsedReaction is one reaction line after lexing, before species
// resolution.
type parsedReaction struct {
	line      int
	reactants []string
	products  []string
	rate      float64
}

// Parse reads a network from its text representation. See the format
// description above; Format is its inverse.
func Parse(text string) (*Network, error) {
	var (
		declared  []string
		haveDecl  bool
		order     []string
		seen      = map[string]bool{}
		reactions []parsedReaction
	)
	note := func(name string) {
		if !seen[name] {
			seen[name] = true
			order = append(order, name)
		}
	}
	for i, raw := range strings.Split(text, "\n") {
		line := i + 1
		content := raw
		if idx := strings.Index(content, "#"); idx >= 0 {
			content = content[:idx]
		}
		content = strings.TrimSpace(content)
		if content == "" {
			continue
		}
		if name, ok := strings.CutPrefix(content, "species:"); ok {
			if haveDecl {
				return nil, &ParseError{line, "duplicate species directive"}
			}
			if len(reactions) > 0 {
				return nil, &ParseError{line, "species directive must precede all reactions"}
			}
			haveDecl = true
			declared = strings.Fields(name)
			if len(declared) == 0 {
				return nil, &ParseError{line, "species directive declares no species"}
			}
			for _, s := range declared {
				if err := checkSpeciesName(s); err != nil {
					return nil, &ParseError{line, err.Error()}
				}
				if seen[s] {
					return nil, &ParseError{line, fmt.Sprintf("duplicate species %q", s)}
				}
				note(s)
			}
			continue
		}
		lhs, rest, ok := strings.Cut(content, "->")
		if !ok {
			return nil, &ParseError{line, "expected 'reactants -> products @ rate'"}
		}
		rhs, rateText, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, &ParseError{line, "missing '@ rate'"}
		}
		rate, err := strconv.ParseFloat(strings.TrimSpace(rateText), 64)
		if err != nil {
			return nil, &ParseError{line, fmt.Sprintf("bad rate %q", strings.TrimSpace(rateText))}
		}
		if rate < 0 || rate != rate || rate > 1e300 {
			return nil, &ParseError{line, fmt.Sprintf("rate %v out of range", rate)}
		}
		reactants, err := parseSide(lhs)
		if err != nil {
			return nil, &ParseError{line, "reactants: " + err.Error()}
		}
		products, err := parseSide(rhs)
		if err != nil {
			return nil, &ParseError{line, "products: " + err.Error()}
		}
		if len(reactants) > MaxReactants {
			return nil, &ParseError{line, fmt.Sprintf("%d reactants, max %d", len(reactants), MaxReactants)}
		}
		for _, s := range append(append([]string{}, reactants...), products...) {
			if haveDecl && !seen[s] {
				return nil, &ParseError{line, fmt.Sprintf("undeclared species %q", s)}
			}
			note(s)
		}
		reactions = append(reactions, parsedReaction{
			line: line, reactants: reactants, products: products, rate: rate,
		})
	}
	if len(order) == 0 {
		return nil, &ParseError{1, "network defines no species"}
	}
	net, err := NewNetwork(order...)
	if err != nil {
		return nil, err
	}
	for _, pr := range reactions {
		r := Reaction{Rate: pr.rate}
		for _, name := range pr.reactants {
			s, err := net.SpeciesByName(name)
			if err != nil {
				return nil, &ParseError{pr.line, err.Error()}
			}
			r.Reactants = append(r.Reactants, s)
		}
		for _, name := range pr.products {
			s, err := net.SpeciesByName(name)
			if err != nil {
				return nil, &ParseError{pr.line, err.Error()}
			}
			r.Products = append(r.Products, s)
		}
		if err := net.AddReaction(r); err != nil {
			return nil, &ParseError{pr.line, err.Error()}
		}
	}
	return net, nil
}

// parseSide expands one side of a reaction into a species-name multiset.
func parseSide(side string) ([]string, error) {
	side = strings.TrimSpace(side)
	if side == "" {
		return nil, fmt.Errorf("empty side; write 0 or ∅ for the empty multiset")
	}
	terms := strings.Split(side, "+")
	if len(terms) == 1 {
		t := strings.TrimSpace(terms[0])
		if t == "0" || t == "∅" {
			return nil, nil
		}
	}
	var names []string
	for _, term := range terms {
		fields := strings.Fields(term)
		switch len(fields) {
		case 0:
			return nil, fmt.Errorf("empty term in %q", side)
		case 1:
			name := fields[0]
			// Compact coefficient form "2X0".
			digits := 0
			for digits < len(name) && name[digits] >= '0' && name[digits] <= '9' {
				digits++
			}
			if digits > 0 && digits < len(name) {
				coeff, err := strconv.Atoi(name[:digits])
				if err != nil || coeff < 1 {
					return nil, fmt.Errorf("bad coefficient in %q", name)
				}
				rest := name[digits:]
				if err := checkSpeciesName(rest); err != nil {
					return nil, err
				}
				for i := 0; i < coeff; i++ {
					names = append(names, rest)
				}
				continue
			}
			if err := checkSpeciesName(name); err != nil {
				return nil, err
			}
			names = append(names, name)
		case 2:
			coeff, err := strconv.Atoi(fields[0])
			if err != nil || coeff < 1 {
				return nil, fmt.Errorf("bad coefficient %q", fields[0])
			}
			if err := checkSpeciesName(fields[1]); err != nil {
				return nil, err
			}
			for i := 0; i < coeff; i++ {
				names = append(names, fields[1])
			}
		default:
			return nil, fmt.Errorf("cannot parse term %q", strings.TrimSpace(term))
		}
	}
	return names, nil
}

// checkSpeciesName validates a species identifier: it must start with a
// letter or underscore and continue with letters, digits, or underscores.
func checkSpeciesName(name string) error {
	if name == "" {
		return fmt.Errorf("empty species name")
	}
	for i, r := range name {
		switch {
		case r == '_', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return fmt.Errorf("species name %q starts with a digit", name)
			}
		default:
			return fmt.Errorf("species name %q contains %q", name, r)
		}
	}
	return nil
}

// Format renders the network in the text format accepted by Parse, starting
// with an explicit species directive so that species indexes round-trip.
// Custom reaction names are not part of the format and are not preserved.
func Format(n *Network) string {
	var b strings.Builder
	b.WriteString("species:")
	for _, name := range n.speciesNames {
		b.WriteByte(' ')
		b.WriteString(name)
	}
	b.WriteByte('\n')
	formatSide := func(ss []Species) string {
		if len(ss) == 0 {
			return "0"
		}
		parts := make([]string, len(ss))
		for i, s := range ss {
			parts[i] = n.SpeciesName(s)
		}
		return strings.Join(parts, " + ")
	}
	for _, r := range n.reactions {
		fmt.Fprintf(&b, "%s -> %s @ %s\n",
			formatSide(r.Reactants), formatSide(r.Products),
			strconv.FormatFloat(r.Rate, 'g', -1, 64))
	}
	return b.String()
}
