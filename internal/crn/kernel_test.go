package crn

import (
	"fmt"
	"math"
	"testing"

	"lvmajority/internal/rng"
)

// naiveSimulator replays the historical direct method with no propensity
// cache: every propensity is recomputed and resummed from scratch on every
// event, exactly as the pre-incremental Simulator did. It is the
// byte-identity oracle for the incremental kernel.
type naiveSimulator struct {
	net   *Network
	state []int
	src   *rng.Source
	props []float64
}

func newNaiveSimulator(net *Network, initial []int, src *rng.Source) *naiveSimulator {
	state := make([]int, len(initial))
	copy(state, initial)
	return &naiveSimulator{net: net, state: state, src: src, props: make([]float64, net.NumReactions())}
}

func (sim *naiveSimulator) step() (int, error) {
	var total float64
	for r := range sim.props {
		p := sim.net.Propensity(r, sim.state)
		sim.props[r] = p
		total += p
	}
	if total <= 0 {
		return 0, ErrExhausted
	}
	u := sim.src.Float64() * total
	acc := 0.0
	last := 0
	for r, p := range sim.props {
		if p == 0 {
			continue
		}
		acc += p
		last = r
		if u < acc {
			if err := sim.net.Apply(r, sim.state); err != nil {
				return 0, err
			}
			return r, nil
		}
	}
	if err := sim.net.Apply(last, sim.state); err != nil {
		return 0, err
	}
	return last, nil
}

// condonLikeNetwork is a 5-reaction, 3-species network exercising shared
// reactants across channels (every channel depends on most others).
func condonLikeNetwork(t testing.TB) *Network {
	t.Helper()
	net, err := NewNetwork("X", "Y", "B")
	if err != nil {
		t.Fatal(err)
	}
	const x, y, b = Species(0), Species(1), Species(2)
	net.MustAddReaction(Reaction{Reactants: []Species{x, y}, Products: []Species{x, b}, Rate: 1})
	net.MustAddReaction(Reaction{Reactants: []Species{y, x}, Products: []Species{y, b}, Rate: 1})
	net.MustAddReaction(Reaction{Reactants: []Species{x, b}, Products: []Species{x, x}, Rate: 1})
	net.MustAddReaction(Reaction{Reactants: []Species{y, b}, Products: []Species{y, y}, Rate: 1})
	net.MustAddReaction(Reaction{Reactants: []Species{b}, Products: []Species{b, b}, Rate: 0.01})
	return net
}

// TestIncrementalByteIdenticalToNaive drives the incremental Simulator and
// the naive full-recompute oracle from identical streams and demands the
// exact same reaction sequence and states: the propensity cache must be
// invisible at the bit level for small (dense-mode) networks.
func TestIncrementalByteIdenticalToNaive(t *testing.T) {
	net := condonLikeNetwork(t)
	for seed := uint64(1); seed <= 5; seed++ {
		sim, err := NewSimulator(net, []int{60, 40, 0}, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		oracle := newNaiveSimulator(net, []int{60, 40, 0}, rng.New(seed))
		for i := 0; i < 100_000; i++ {
			got, err1 := sim.Step()
			want, err2 := oracle.step()
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("seed %d event %d: incremental err=%v, naive err=%v", seed, i, err1, err2)
			}
			if err1 != nil {
				break
			}
			if got != want {
				t.Fatalf("seed %d event %d: incremental fired %d, naive fired %d", seed, i, got, want)
			}
			for s, c := range sim.StateView() {
				if oracle.state[s] != c {
					t.Fatalf("seed %d event %d: state diverged: %v vs %v", seed, i, sim.StateView(), oracle.state)
				}
			}
		}
	}
}

// TestIncrementalCacheFresh verifies that after every fired reaction the
// cached propensities equal a from-scratch recomputation (the dependency
// graph misses nothing).
func TestIncrementalCacheFresh(t *testing.T) {
	net := condonLikeNetwork(t)
	sim, err := NewSimulator(net, []int{30, 20, 0}, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20_000; i++ {
		if _, err := sim.Step(); err != nil {
			break
		}
		for r := range sim.props {
			if want := net.Propensity(r, sim.state); sim.props[r] != want {
				t.Fatalf("event %d: cached propensity[%d] = %v, recomputed %v", i, r, sim.props[r], want)
			}
		}
	}
}

// sparseVoterNetwork builds a 2-species network with many parallel channels
// (above denseTotalThreshold), so the Simulator takes the sparse
// running-total + Fenwick-tree path.
func sparseVoterNetwork(t testing.TB, channels int) *Network {
	t.Helper()
	net, err := NewNetwork("X", "Y")
	if err != nil {
		t.Fatal(err)
	}
	const x, y = Species(0), Species(1)
	for i := 0; i < channels; i++ {
		// Alternate directions in mirrored pairs: channel 2k (X wins) and
		// channel 2k+1 (Y wins) share a rate, so the two directions have
		// identical total rate and the gap is a ±1 martingale.
		rate := 1 + float64((i/2)%7)/10
		if i%2 == 0 {
			net.MustAddReaction(Reaction{Name: fmt.Sprintf("xwins%d", i), Reactants: []Species{x, y}, Products: []Species{x, x}, Rate: rate})
		} else {
			net.MustAddReaction(Reaction{Name: fmt.Sprintf("ywins%d", i), Reactants: []Species{x, y}, Products: []Species{y, y}, Rate: rate})
		}
	}
	return net
}

// TestSparsePathMatchesNaiveDistribution chi-square-tests the first-event
// distribution of the sparse (Fenwick) kernel against exact propensity
// proportions.
func TestSparsePathMatchesNaiveDistribution(t *testing.T) {
	net := sparseVoterNetwork(t, 40)
	initial := []int{25, 15}
	sim, err := NewSimulator(net, initial, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if sim.dense {
		t.Fatalf("40-channel network unexpectedly on the dense path")
	}

	var total float64
	props := make([]float64, net.NumReactions())
	for r := range props {
		props[r] = net.Propensity(r, initial)
		total += props[r]
	}

	const draws = 200_000
	counts := make([]int, net.NumReactions())
	for i := 0; i < draws; i++ {
		if err := sim.Reset(initial, rng.New(uint64(1000+i))); err != nil {
			t.Fatal(err)
		}
		r, err := sim.Step()
		if err != nil {
			t.Fatal(err)
		}
		counts[r]++
	}

	// Pearson chi-square against the exact propensity proportions. With 39
	// degrees of freedom the 99.9% quantile is ~72.1.
	var chi2 float64
	for r, c := range counts {
		expected := float64(draws) * props[r] / total
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 72.1 {
		t.Errorf("sparse first-event chi-square = %v over 39 dof (99.9%% quantile 72.1)", chi2)
	}
}

// TestSparsePathLongRunAgreesWithDense runs the same many-channel voter
// model to consensus on the sparse path and cross-checks the winner
// frequency against the exact martingale probability a/(a+b): drift-
// controlled resummation must not bias long runs.
func TestSparsePathLongRunAgreesWithDense(t *testing.T) {
	net := sparseVoterNetwork(t, 34)
	// Equal total rate in both directions: X wins with probability
	// exactly a/(a+b) (gap martingale), here 25/40.
	initial := []int{25, 15}
	sim, err := NewSimulator(net, initial, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Mirrored channel pairs share rates, so both directions have the
	// same total rate and the exact win probability is a/(a+b).
	const trials = 4000
	wins := 0
	for i := 0; i < trials; i++ {
		if err := sim.Reset(initial, rng.New(uint64(i))); err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := sim.Step(); err != nil {
				break
			}
			if sim.Count(0) == 0 || sim.Count(1) == 0 {
				break
			}
		}
		if sim.Count(0) > 0 {
			wins++
		}
	}
	want := 25.0 / 40.0
	got := float64(wins) / trials
	// Z999 half-width for p ~ 0.625 over 4000 trials is ~0.025.
	if math.Abs(got-want) > 0.03 {
		t.Errorf("sparse-path win frequency %v, exact %v", got, want)
	}
}

// TestSelectChannelSlackSkipsZeroTail is the regression test for the
// floating-point-slack fallback: when u lands at or beyond the accumulated
// total, the selected channel must be the last one with positive
// propensity, never a trailing zero-propensity channel.
func TestSelectChannelSlackSkipsZeroTail(t *testing.T) {
	cases := []struct {
		props []float64
		u     float64
		want  int
	}{
		// Zero tail: slack must return channel 3, not 4 or 5.
		{[]float64{0.3, 0, 0, 0.3, 0, 0}, 0.6, 3},
		{[]float64{0.3, 0, 0, 0.3, 0, 0}, 1e9, 3},
		// Zero head and tail.
		{[]float64{0, 0.5, 0, 0}, 0.5, 1},
		// Regular in-range picks are unaffected by the fallback.
		{[]float64{0.3, 0, 0, 0.3, 0, 0}, 0.0, 0},
		{[]float64{0.3, 0, 0, 0.3, 0, 0}, 0.29, 0},
		{[]float64{0.3, 0, 0, 0.3, 0, 0}, 0.31, 3},
		// All-zero vector: no channel is selectable.
		{[]float64{0, 0, 0}, 0.1, -1},
	}
	for _, tc := range cases {
		if got := selectChannel(tc.props, tc.u); got != tc.want {
			t.Errorf("selectChannel(%v, %v) = %d, want %d", tc.props, tc.u, got, tc.want)
		}
	}
}

// TestPropTreeMatchesLinearScan cross-checks the Fenwick-tree sampler
// against the linear selector on integer-valued propensities, where both
// prefix-sum orders are exact in floating point and must agree everywhere,
// including zero channels and the slack fallback.
func TestPropTreeMatchesLinearScan(t *testing.T) {
	vectors := [][]float64{
		{1, 2, 3, 4, 5},
		{0, 0, 7, 0, 1, 0, 0},
		{5, 0, 0, 0, 0, 0, 0, 3},
		{1},
		{0, 4},
		{2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2},
	}
	for _, props := range vectors {
		var tree propTree
		tree.rebuild(props)
		var total float64
		for _, p := range props {
			total += p
		}
		for u := -0.5; u < total+2; u += 0.25 {
			want := selectChannel(props, u)
			if u < 0 {
				// selectChannel never sees negative u in production;
				// the tree clamps to the first positive channel.
				continue
			}
			if got := tree.sample(props, u); got != want {
				t.Errorf("props %v u=%v: tree sampled %d, linear %d", props, u, got, want)
			}
		}
	}
}

// TestPropTreeIncrementalUpdates applies random point updates and verifies
// sampling stays consistent with a fresh rebuild.
func TestPropTreeIncrementalUpdates(t *testing.T) {
	props := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	var tree propTree
	tree.rebuild(props)
	src := rng.New(42)
	for iter := 0; iter < 1000; iter++ {
		r := src.Intn(len(props))
		next := float64(src.Intn(10))
		tree.add(r, next-props[r])
		props[r] = next
	}
	var fresh propTree
	fresh.rebuild(props)
	var total float64
	for _, p := range props {
		total += p
	}
	for u := 0.0; u < total; u += 0.5 {
		if got, want := tree.sample(props, u), fresh.sample(props, u); got != want {
			t.Errorf("u=%v: updated tree sampled %d, fresh tree %d (props %v)", u, got, want, props)
		}
	}
}

// TestDependentsSharedAndComplete checks the public dependency-graph
// accessor: r's dependents contain every reaction reading a species r
// changes, with r first.
func TestDependentsSharedAndComplete(t *testing.T) {
	net := condonLikeNetwork(t)
	for r := 0; r < net.NumReactions(); r++ {
		deps := net.Dependents(r)
		if len(deps) == 0 || deps[0] != r {
			t.Fatalf("Dependents(%d) = %v, want r itself first", r, deps)
		}
		in := make(map[int]bool, len(deps))
		for _, d := range deps {
			in[d] = true
		}
		for other := 0; other < net.NumReactions(); other++ {
			affected := false
			for s := 0; s < net.NumSpecies(); s++ {
				if net.Delta(r, Species(s)) != 0 && reactantMultiplicity(net, other, Species(s)) > 0 {
					affected = true
				}
			}
			if affected && !in[other] {
				t.Errorf("Dependents(%d) = %v misses affected reaction %d", r, deps, other)
			}
		}
	}
}

func reactantMultiplicity(net *Network, r int, s Species) int {
	m := 0
	for _, rs := range net.Reaction(r).Reactants {
		if rs == s {
			m++
		}
	}
	return m
}
