// Package crn implements stochastic chemical reaction networks with
// mass-action kinetics, the formalism the paper uses to define its
// Lotka–Volterra models (§1.3). It supports reactions with up to three
// reactants (the Condon et al. baselines in internal/protocols use
// trimolecular rules), exact Gillespie simulation in continuous time, and
// discrete-time jump-chain stepping.
//
// Propensities follow standard stochastic mass-action kinetics with unit
// volume: a reaction with reactant multiset {m_s copies of species s} and
// rate constant k has propensity k · Π_s x_s·(x_s−1)···(x_s−m_s+1) / m_s!.
// In particular X+X at rate γ has propensity γ·x(x−1)/2 and X+Y at rate α
// has propensity α·x·y, exactly as in the paper.
package crn

import (
	"fmt"
	"strings"
	"sync"
)

// MaxReactants is the largest supported reactant multiset size. Trimolecular
// reactions are the most complex used by any system in this repository.
const MaxReactants = 3

// Species identifies a species by its index in the owning Network.
type Species int

// Reaction is a single reaction channel with mass-action kinetics.
type Reaction struct {
	// Name is a human-readable label used in traces and errors.
	Name string
	// Reactants lists the consumed species; repeats express stoichiometry
	// (e.g. [A, A] for A+A → ...). At most MaxReactants entries.
	Reactants []Species
	// Products lists the produced species, with repeats for stoichiometry.
	Products []Species
	// Rate is the non-negative rate constant.
	Rate float64
}

// Network is an immutable set of species and reaction channels. Build one
// with NewNetwork and AddReaction (or the Builder helpers), then hand it to
// a Simulator.
type Network struct {
	speciesNames []string
	reactions    []Reaction
	// delta[r][s] is the net change of species s when reaction r fires.
	delta [][]int
	// reactantCount[r][s] is the multiplicity of s among r's reactants.
	reactantCount [][]int

	// depMu guards the lazily built dependency graph. Simulators for the
	// same network may be constructed concurrently (one per Monte-Carlo
	// worker), so the first compile must be race-free; AddReaction
	// invalidates the graph and is documented as construction-time only.
	depMu sync.Mutex
	// deps[r] lists the reactions whose propensity can change when r
	// fires (always including r itself), in ascending index order.
	deps [][]int
}

// NewNetwork creates a network over the given named species. Species indexes
// follow the argument order. It returns an error if no species are given or
// names repeat.
func NewNetwork(speciesNames ...string) (*Network, error) {
	if len(speciesNames) == 0 {
		return nil, fmt.Errorf("crn: network needs at least one species")
	}
	seen := make(map[string]bool, len(speciesNames))
	for _, name := range speciesNames {
		if name == "" {
			return nil, fmt.Errorf("crn: empty species name")
		}
		if seen[name] {
			return nil, fmt.Errorf("crn: duplicate species name %q", name)
		}
		seen[name] = true
	}
	names := make([]string, len(speciesNames))
	copy(names, speciesNames)
	return &Network{speciesNames: names}, nil
}

// NumSpecies returns the number of species in the network.
func (n *Network) NumSpecies() int { return len(n.speciesNames) }

// NumReactions returns the number of reaction channels.
func (n *Network) NumReactions() int { return len(n.reactions) }

// SpeciesName returns the name of species s, or "?" if out of range.
func (n *Network) SpeciesName(s Species) string {
	if s < 0 || int(s) >= len(n.speciesNames) {
		return "?"
	}
	return n.speciesNames[s]
}

// SpeciesByName returns the index of the named species.
func (n *Network) SpeciesByName(name string) (Species, error) {
	for i, s := range n.speciesNames {
		if s == name {
			return Species(i), nil
		}
	}
	return 0, fmt.Errorf("crn: unknown species %q", name)
}

// Reaction returns reaction channel r. It panics on out-of-range r, which
// indicates a programming error rather than bad input.
func (n *Network) Reaction(r int) Reaction { return n.reactions[r] }

// AddReaction appends a reaction channel. The reaction is validated: the
// rate must be non-negative and finite, species must exist, and at most
// MaxReactants reactants are allowed. An empty reactant list expresses a
// constant-rate source reaction (∅ → products).
func (n *Network) AddReaction(r Reaction) error {
	if r.Rate < 0 {
		return fmt.Errorf("crn: reaction %q has negative rate %v", r.Name, r.Rate)
	}
	if r.Rate != r.Rate || r.Rate > 1e300 {
		return fmt.Errorf("crn: reaction %q has non-finite rate", r.Name)
	}
	if len(r.Reactants) > MaxReactants {
		return fmt.Errorf("crn: reaction %q has %d reactants, max %d", r.Name, len(r.Reactants), MaxReactants)
	}
	for _, s := range append(append([]Species{}, r.Reactants...), r.Products...) {
		if s < 0 || int(s) >= len(n.speciesNames) {
			return fmt.Errorf("crn: reaction %q references unknown species index %d", r.Name, s)
		}
	}
	if r.Name == "" {
		r.Name = n.defaultName(r)
	}
	// Precompute stoichiometry.
	delta := make([]int, len(n.speciesNames))
	count := make([]int, len(n.speciesNames))
	for _, s := range r.Reactants {
		delta[s]--
		count[s]++
	}
	for _, s := range r.Products {
		delta[s]++
	}
	// Defensive copies so callers cannot mutate the network afterwards.
	stored := Reaction{
		Name:      r.Name,
		Reactants: append([]Species(nil), r.Reactants...),
		Products:  append([]Species(nil), r.Products...),
		Rate:      r.Rate,
	}
	n.reactions = append(n.reactions, stored)
	n.delta = append(n.delta, delta)
	n.reactantCount = append(n.reactantCount, count)
	n.depMu.Lock()
	n.deps = nil
	n.depMu.Unlock()
	return nil
}

// MustAddReaction is AddReaction for statically known-valid reactions in
// constructors; it panics on error.
func (n *Network) MustAddReaction(r Reaction) {
	if err := n.AddReaction(r); err != nil {
		panic(err)
	}
}

func (n *Network) defaultName(r Reaction) string {
	side := func(ss []Species) string {
		if len(ss) == 0 {
			return "∅"
		}
		parts := make([]string, len(ss))
		for i, s := range ss {
			parts[i] = n.SpeciesName(s)
		}
		return strings.Join(parts, "+")
	}
	return side(r.Reactants) + "->" + side(r.Products)
}

// Propensity returns the mass-action propensity of reaction r in the given
// state. It panics if r is out of range or the state has the wrong length
// (programming errors). Counts below the required stoichiometry yield 0.
func (n *Network) Propensity(r int, state []int) float64 {
	if len(state) != len(n.speciesNames) {
		panic(fmt.Sprintf("crn: state has %d species, network has %d", len(state), len(n.speciesNames)))
	}
	rate := n.reactions[r].Rate
	if rate == 0 {
		return 0
	}
	p := rate
	for s, m := range n.reactantCount[r] {
		if m == 0 {
			continue
		}
		x := state[s]
		if x < m {
			return 0
		}
		// Falling factorial x·(x−1)···(x−m+1) divided by m!.
		switch m {
		case 1:
			p *= float64(x)
		case 2:
			p *= float64(x) * float64(x-1) / 2
		case 3:
			p *= float64(x) * float64(x-1) * float64(x-2) / 6
		default:
			// Unreachable: AddReaction caps multiset size at
			// MaxReactants.
			panic("crn: unsupported stoichiometry")
		}
	}
	return p
}

// TotalPropensity returns the sum of all reaction propensities in state.
func (n *Network) TotalPropensity(state []int) float64 {
	var total float64
	for r := range n.reactions {
		total += n.Propensity(r, state)
	}
	return total
}

// Apply fires reaction r on state in place. It returns an error if any count
// would go negative, leaving state unchanged in that case.
func (n *Network) Apply(r int, state []int) error {
	for s, d := range n.delta[r] {
		if d < 0 && state[s]+d < 0 {
			return fmt.Errorf("crn: firing %q would drive %s below zero", n.reactions[r].Name, n.SpeciesName(Species(s)))
		}
	}
	for s, d := range n.delta[r] {
		state[s] += d
	}
	return nil
}

// Delta returns the net stoichiometric change of species s under reaction r.
func (n *Network) Delta(r int, s Species) int { return n.delta[r][s] }

// Dependents returns the indexes of the reactions whose propensity can
// change when reaction r fires: every reaction with a reactant among the
// species whose count r changes, always with r itself first. The returned
// slice is shared: callers must not modify it. The graph is built once on
// first use and reused by every simulator over the network.
func (n *Network) Dependents(r int) []int { return n.dependencyGraph()[r] }

// dependencyGraph returns the species→reaction dependency graph, building
// and caching it on first use.
func (n *Network) dependencyGraph() [][]int {
	n.depMu.Lock()
	defer n.depMu.Unlock()
	if n.deps != nil {
		return n.deps
	}
	nr := len(n.reactions)
	// For each species, which reactions read it (have it as reactant)?
	readers := make([][]int, len(n.speciesNames))
	for r := 0; r < nr; r++ {
		for s, m := range n.reactantCount[r] {
			if m > 0 {
				readers[s] = append(readers[s], r)
			}
		}
	}
	deps := make([][]int, nr)
	for r := 0; r < nr; r++ {
		seen := make(map[int]bool, nr)
		seen[r] = true
		deps[r] = append(deps[r], r)
		for s := range n.speciesNames {
			if n.delta[r][s] == 0 {
				continue
			}
			for _, other := range readers[s] {
				if !seen[other] {
					seen[other] = true
					deps[r] = append(deps[r], other)
				}
			}
		}
	}
	n.deps = deps
	return deps
}
