package crn

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"lvmajority/internal/rng"
)

func TestParseSelfDestructiveLV(t *testing.T) {
	const text = `
# The paper's model (1), neutral, alpha = 0.5 per direction.
species: X0 X1
X0 -> 2 X0 @ 1      # birth
X1 -> 2 X1 @ 1
X0 -> 0 @ 1         # death
X1 -> 0 @ 1
X0 + X1 -> 0 @ 0.5  # interspecific competition (both die)
X1 + X0 -> 0 @ 0.5
`
	net, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumSpecies() != 2 || net.NumReactions() != 6 {
		t.Fatalf("got %d species, %d reactions", net.NumSpecies(), net.NumReactions())
	}
	// Birth reaction: X0 -> X0 + X0 must have delta +1 and propensity
	// beta*x0.
	if d := net.Delta(0, 0); d != 1 {
		t.Errorf("birth delta = %d, want 1", d)
	}
	state := []int{10, 20}
	if p := net.Propensity(4, state); p != 0.5*10*20 {
		t.Errorf("competition propensity = %v, want 100", p)
	}
}

func TestParseInfersSpeciesInOrderOfAppearance(t *testing.T) {
	net, err := Parse("A + B -> C @ 1\nC -> 0 @ 2\n")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"A", "B", "C"}
	for i, name := range want {
		if got := net.SpeciesName(Species(i)); got != name {
			t.Errorf("species %d = %q, want %q", i, got, name)
		}
	}
}

func TestParseCoefficients(t *testing.T) {
	// "2 X" spaced, "2X" compact, and repeats must all mean X + X.
	for _, text := range []string{
		"X + X -> 0 @ 3",
		"2 X -> 0 @ 3",
		"2X -> 0 @ 3",
	} {
		net, err := Parse(text)
		if err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		r := net.Reaction(0)
		if len(r.Reactants) != 2 || r.Reactants[0] != 0 || r.Reactants[1] != 0 {
			t.Errorf("%q: reactants %v, want [X X]", text, r.Reactants)
		}
		// Propensity must use the x(x-1)/2 falling factorial.
		if p := net.Propensity(0, []int{4}); p != 3*4*3/2.0 {
			t.Errorf("%q: propensity %v, want 18", text, p)
		}
	}
}

func TestParseEmptySides(t *testing.T) {
	for _, empty := range []string{"0", "∅"} {
		net, err := Parse("species: X\n" + empty + " -> X @ 5\nX -> " + empty + " @ 7\n")
		if err != nil {
			t.Fatalf("%q: %v", empty, err)
		}
		source := net.Reaction(0)
		if len(source.Reactants) != 0 || len(source.Products) != 1 {
			t.Errorf("source reaction parsed as %v", source)
		}
		// A source reaction has constant propensity equal to its rate.
		if p := net.Propensity(0, []int{123}); p != 5 {
			t.Errorf("source propensity %v, want 5", p)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, text string
		wantLine   int
	}{
		{"missing arrow", "X @ 1\n", 1},
		{"missing rate", "X -> 0\n", 1},
		{"bad rate", "X -> 0 @ abc\n", 1},
		{"negative rate", "X -> 0 @ -1\n", 1},
		{"too many reactants", "X + X + X + X -> 0 @ 1\n", 1},
		{"undeclared species", "species: X\nX -> Y @ 1\n", 2},
		{"duplicate directive", "species: X\nspecies: Y\n", 2},
		{"late directive", "X -> 0 @ 1\nspecies: X\n", 2},
		{"empty directive", "species:\n", 1},
		{"digit-leading name", "1X2 + -> 0 @ 1\n", 1},
		{"bad character", "X$ -> 0 @ 1\n", 1},
		{"empty file", "# nothing here\n", 1},
		{"zero coefficient", "0 X -> 0 @ 1\n", 1},
		{"empty term", "X + -> 0 @ 1\n", 1},
		{"duplicate species in directive", "species: X X\n", 1},
	}
	for _, tc := range cases {
		_, err := Parse(tc.text)
		if err == nil {
			t.Errorf("%s: parse succeeded", tc.name)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("%s: error %v is not a *ParseError", tc.name, err)
			continue
		}
		if pe.Line != tc.wantLine {
			t.Errorf("%s: error on line %d, want %d (%v)", tc.name, pe.Line, tc.wantLine, err)
		}
	}
}

func TestParseLineNumbersSkipCommentsAndBlanks(t *testing.T) {
	_, err := Parse("# header\n\nspecies: X\n\nX -> Y @ 1\n")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v", err)
	}
	if pe.Line != 5 {
		t.Errorf("error line %d, want 5", pe.Line)
	}
}

// TestFormatParseRoundTrip checks that Format is a right inverse of Parse:
// parsing the formatted text reproduces the species table, stoichiometry,
// and rates exactly.
func TestFormatParseRoundTrip(t *testing.T) {
	net, err := NewNetwork("X0", "X1", "R")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Reaction{
		{Reactants: []Species{0}, Products: []Species{0, 0}, Rate: 1},
		{Reactants: []Species{0, 1}, Products: nil, Rate: 0.25},
		{Reactants: nil, Products: []Species{2}, Rate: 10},
		{Reactants: []Species{2, 0, 0}, Products: []Species{1}, Rate: 1e-3},
	} {
		if err := net.AddReaction(r); err != nil {
			t.Fatal(err)
		}
	}
	text := Format(net)
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	if back.NumSpecies() != net.NumSpecies() || back.NumReactions() != net.NumReactions() {
		t.Fatalf("round trip changed shape: %s", text)
	}
	for i := 0; i < net.NumSpecies(); i++ {
		if net.SpeciesName(Species(i)) != back.SpeciesName(Species(i)) {
			t.Errorf("species %d renamed", i)
		}
	}
	for r := 0; r < net.NumReactions(); r++ {
		a, b := net.Reaction(r), back.Reaction(r)
		if !reflect.DeepEqual(a.Reactants, b.Reactants) ||
			!reflect.DeepEqual(a.Products, b.Products) || a.Rate != b.Rate {
			t.Errorf("reaction %d changed: %+v vs %+v", r, a, b)
		}
	}
}

// TestFormatRoundTripRandomNetworks drives the round trip property with
// randomly generated networks.
func TestFormatRoundTripRandomNetworks(t *testing.T) {
	src := rng.New(31)
	build := func(nSpecies, nReactions uint8) bool {
		ns := 1 + int(nSpecies%5)
		names := make([]string, ns)
		for i := range names {
			names[i] = "S" + string(rune('A'+i))
		}
		net, err := NewNetwork(names...)
		if err != nil {
			return false
		}
		for r := 0; r < 1+int(nReactions%8); r++ {
			var re Reaction
			for k := src.Intn(MaxReactants + 1); k > 0; k-- {
				re.Reactants = append(re.Reactants, Species(src.Intn(ns)))
			}
			for k := src.Intn(4); k > 0; k-- {
				re.Products = append(re.Products, Species(src.Intn(ns)))
			}
			re.Rate = float64(src.Intn(1000)) / 64
			if err := net.AddReaction(re); err != nil {
				return false
			}
		}
		back, err := Parse(Format(net))
		if err != nil {
			return false
		}
		if back.NumReactions() != net.NumReactions() {
			return false
		}
		for r := 0; r < net.NumReactions(); r++ {
			a, b := net.Reaction(r), back.Reaction(r)
			if !reflect.DeepEqual(a.Reactants, b.Reactants) ||
				!reflect.DeepEqual(a.Products, b.Products) || a.Rate != b.Rate {
				return false
			}
		}
		return true
	}
	if err := quick.Check(build, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestParsedNetworkSimulates is the integration check: a parsed network
// must drive the simulator, and a pure-death network must reach absorption.
func TestParsedNetworkSimulates(t *testing.T) {
	net, err := Parse("species: X\nX -> 0 @ 1\n")
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(net, []int{50}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(nil, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Absorbed || sim.Count(0) != 0 || res.Steps != 50 {
		t.Errorf("pure death chain: %+v, final count %d", res, sim.Count(0))
	}
}

func TestFormatStartsWithSpeciesDirective(t *testing.T) {
	net, err := Parse("B -> A @ 1\n")
	if err != nil {
		t.Fatal(err)
	}
	text := Format(net)
	if !strings.HasPrefix(text, "species: B A\n") {
		t.Errorf("Format output does not pin species order:\n%s", text)
	}
}
