package crn

// This file holds the event-kernel machinery shared by the exact
// simulators: the cached-propensity channel selector and the Fenwick
// (binary-indexed) propensity tree used by large networks.
//
// The direct method spends its time in two places per event: recomputing
// every propensity (O(R) falling-factorial products) and linear-scanning
// the propensity array. The incremental kernel removes the first cost for
// every network — after firing r only Dependents(r) are recomputed — and
// the second for large networks, which sample through an O(log R) prefix
// tree instead of the linear CDF scan.

const (
	// denseTotalThreshold is the largest reaction count for which the
	// direct method resums the cached propensity array on every pick.
	// Resumming in index order reproduces the naive direct method's
	// floating-point total bit for bit, so small networks — every network
	// in this repository — keep byte-identical traces while still skipping
	// the propensity recomputation. Larger networks switch to a running
	// total with drift-controlled resummation and Fenwick-tree sampling,
	// which is distributionally (not bitwise) equivalent.
	denseTotalThreshold = 32

	// resumInterval bounds the floating-point drift of the sparse running
	// total: after this many incremental updates the total and the tree
	// are rebuilt from the cached propensities.
	resumInterval = 4096
)

// selectChannel picks the reaction whose cached-propensity CDF interval
// contains u (callers draw u uniform in [0, total)). When u lands at or
// beyond the accumulated total — floating-point slack, or a slightly
// drifted running total — it falls back to the last channel with positive
// propensity, never a zero-propensity one. It returns −1 only if every
// channel is zero.
func selectChannel(props []float64, u float64) int {
	acc := 0.0
	last := -1
	for r, p := range props {
		if p <= 0 {
			continue
		}
		acc += p
		last = r
		if u < acc {
			return r
		}
	}
	return last
}

// propTree is a Fenwick (binary-indexed) tree over the propensity array:
// point update and prefix-sum sampling in O(log R). Zero value is unusable;
// call rebuild first.
type propTree struct {
	// sums is 1-indexed: sums[i] covers the segment ending at i.
	sums []float64
	// mask is the highest power of two <= len(props), precomputed for the
	// top-down descent in sample.
	mask int
}

// rebuild re-derives the tree from props, reusing storage.
func (t *propTree) rebuild(props []float64) {
	n := len(props)
	if cap(t.sums) < n+1 {
		t.sums = make([]float64, n+1)
	}
	t.sums = t.sums[:n+1]
	for i := range t.sums {
		t.sums[i] = 0
	}
	for i, p := range props {
		t.sums[i+1] += p
		if j := (i + 1) + ((i + 1) & -(i + 1)); j <= n {
			t.sums[j] += t.sums[i+1]
		}
	}
	t.mask = 1
	for t.mask<<1 <= n {
		t.mask <<= 1
	}
}

// add applies a point delta to channel r (0-based).
func (t *propTree) add(r int, delta float64) {
	for i := r + 1; i < len(t.sums); i += i & -i {
		t.sums[i] += delta
	}
}

// sample returns the smallest channel whose prefix sum exceeds u, skipping
// zero-propensity channels on floating-point slack exactly like
// selectChannel: out-of-range descents fall back to the last positive
// channel in props. It returns −1 only if every channel is zero.
func (t *propTree) sample(props []float64, u float64) int {
	idx := 0
	n := len(props)
	for k := t.mask; k > 0; k >>= 1 {
		next := idx + k
		if next <= n && t.sums[next] <= u {
			u -= t.sums[next]
			idx = next
		}
	}
	// idx counts the channels strictly before the selected one.
	if idx < n && props[idx] > 0 {
		return idx
	}
	// Slack fallback: u landed within rounding of (or beyond) the true
	// total, or on a zero-width interval. Walk back to the last positive
	// channel.
	for r := min(idx, n-1); r >= 0; r-- {
		if props[r] > 0 {
			return r
		}
	}
	for r := min(idx, n-1) + 1; r < n; r++ {
		if props[r] > 0 {
			return r
		}
	}
	return -1
}
