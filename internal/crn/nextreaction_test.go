package crn

import (
	"errors"
	"math"
	"testing"

	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

func TestNewNRMSimulatorValidation(t *testing.T) {
	net := deathNetwork(t, 1)
	if _, err := NewNRMSimulator(net, []int{1, 2}, rng.New(1)); err == nil {
		t.Error("wrong state length accepted")
	}
	if _, err := NewNRMSimulator(net, []int{-1}, rng.New(1)); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := NewNRMSimulator(net, []int{1}, nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestNRMAbsorbed(t *testing.T) {
	net := deathNetwork(t, 1)
	sim, err := NewNRMSimulator(net, []int{0}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Step(); !errors.Is(err, ErrExhausted) {
		t.Errorf("Step on absorbed chain returned %v", err)
	}
}

func TestNRMPureDeathStepCount(t *testing.T) {
	net := deathNetwork(t, 2)
	const n = 123
	sim, err := NewNRMSimulator(net, []int{n}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Absorbed || res.Steps != n || sim.Count(0) != 0 {
		t.Errorf("result %+v, count %d; want %d deaths to zero", res, sim.Count(0), n)
	}
	if sim.Time() <= 0 {
		t.Error("no time elapsed")
	}
}

func TestNRMExtinctionTimeMatchesDirectMethod(t *testing.T) {
	// The NRM and the direct method sample the same continuous-time
	// chain: extinction-time distributions must agree (KS test).
	if testing.Short() {
		t.Skip("statistical test")
	}
	build := func() *Network {
		net := mustNetwork(t, "X")
		net.MustAddReaction(Reaction{Name: "birth", Reactants: []Species{0}, Products: []Species{0, 0}, Rate: 0.5})
		net.MustAddReaction(Reaction{Name: "death", Reactants: []Species{0}, Rate: 1})
		return net
	}
	const n0 = 20
	const trials = 3000

	direct := make([]float64, 0, trials)
	src1 := rng.New(17)
	for i := 0; i < trials; i++ {
		sim, err := NewSimulator(build(), []int{n0}, src1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.RunTime(nil, 0, 0, nil); err != nil {
			t.Fatal(err)
		}
		direct = append(direct, sim.Time())
	}
	nrm := make([]float64, 0, trials)
	src2 := rng.New(19)
	for i := 0; i < trials; i++ {
		sim, err := NewNRMSimulator(build(), []int{n0}, src2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(nil, 0); err != nil {
			t.Fatal(err)
		}
		nrm = append(nrm, sim.Time())
	}
	d, err := stats.KSDistance(stats.NewECDF(direct), stats.NewECDF(nrm))
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.05 {
		t.Errorf("KS distance between direct and NRM extinction times = %v", d)
	}
}

func TestNRMJumpDistributionMatchesPropensities(t *testing.T) {
	// Competing channels at rates 1 and 3: the fast one wins 75% of
	// first firings under the race of exponential clocks.
	net := mustNetwork(t, "X")
	net.MustAddReaction(Reaction{Name: "slow", Reactants: []Species{0}, Rate: 1})
	net.MustAddReaction(Reaction{Name: "fast", Reactants: []Species{0}, Rate: 3})
	src := rng.New(23)
	const trials = 40000
	fast := 0
	for i := 0; i < trials; i++ {
		sim, err := NewNRMSimulator(net, []int{1}, src)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sim.Step()
		if err != nil {
			t.Fatal(err)
		}
		if r == 1 {
			fast++
		}
	}
	got := float64(fast) / trials
	if math.Abs(got-0.75) > 0.01 {
		t.Errorf("fast channel frequency = %v, want ~0.75", got)
	}
}

func TestDependencyGraph(t *testing.T) {
	// A → B (r0) changes A and B; r1 reads A, r2 reads B, r3 reads C.
	net := mustNetwork(t, "A", "B", "C")
	net.MustAddReaction(Reaction{Name: "convert", Reactants: []Species{0}, Products: []Species{1}, Rate: 1})
	net.MustAddReaction(Reaction{Name: "readA", Reactants: []Species{0}, Products: []Species{0}, Rate: 1})
	net.MustAddReaction(Reaction{Name: "readB", Reactants: []Species{1}, Products: []Species{1}, Rate: 1})
	net.MustAddReaction(Reaction{Name: "readC", Reactants: []Species{2}, Products: []Species{2}, Rate: 1})
	deps := net.dependencyGraph()
	has := func(r, dep int) bool {
		for _, d := range deps[r] {
			if d == dep {
				return true
			}
		}
		return false
	}
	if !has(0, 0) || !has(0, 1) || !has(0, 2) {
		t.Errorf("convert should affect itself, readA and readB: %v", deps[0])
	}
	if has(0, 3) {
		t.Errorf("convert should not affect readC: %v", deps[0])
	}
	// readA changes nothing (A -> A), so it affects only itself.
	if len(deps[1]) != 1 || deps[1][0] != 1 {
		t.Errorf("readA deps = %v, want [1]", deps[1])
	}
}

func TestNRMRunStopPredicate(t *testing.T) {
	net := deathNetwork(t, 1)
	sim, err := NewNRMSimulator(net, []int{10}, rng.New(29))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(func(state []int) bool { return state[0] <= 3 }, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || sim.Count(0) != 3 {
		t.Errorf("result %+v, count %d; want stop at 3", res, sim.Count(0))
	}
}

func TestNRMStateIsCopy(t *testing.T) {
	net := deathNetwork(t, 1)
	sim, err := NewNRMSimulator(net, []int{5}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	view := sim.State()
	view[0] = 42
	if sim.Count(0) != 5 {
		t.Error("State() exposed internal state")
	}
}
