package faultpoint

import (
	"errors"
	"sync"
	"testing"
)

func TestUnarmedHitIsNil(t *testing.T) {
	Disarm()
	if Armed() {
		t.Fatal("Armed() true with no plan")
	}
	for i := 0; i < 1000; i++ {
		if err := Hit(TrialStart); err != nil {
			t.Fatalf("unarmed Hit returned %v", err)
		}
	}
}

func TestErrorRuleTriggersExactWindow(t *testing.T) {
	p := NewPlan(Rule{Site: CacheWrite, After: 2, Times: 3, Mode: ModeError, Msg: "disk full"})
	Arm(p)
	defer Disarm()

	var failed []int
	for i := 0; i < 10; i++ {
		if err := Hit(CacheWrite); err != nil {
			failed = append(failed, i)
			var inj *InjectedError
			if !errors.As(err, &inj) || inj.Site != CacheWrite {
				t.Fatalf("hit %d: error %v is not an InjectedError at cache-write", i, err)
			}
		}
	}
	want := []int{2, 3, 4}
	if len(failed) != len(want) {
		t.Fatalf("failed hits %v, want %v", failed, want)
	}
	for i := range want {
		if failed[i] != want[i] {
			t.Fatalf("failed hits %v, want %v", failed, want)
		}
	}
	if p.Triggered() != 3 {
		t.Errorf("Triggered() = %d, want 3", p.Triggered())
	}
	if p.Hits(CacheWrite) != 10 {
		t.Errorf("Hits(cache-write) = %d, want 10", p.Hits(CacheWrite))
	}
}

func TestPanicRule(t *testing.T) {
	Arm(NewPlan(Rule{Site: TrialStart, After: 0, Mode: ModePanic, Msg: "boom"}))
	defer Disarm()

	func() {
		defer func() {
			v := recover()
			ip, ok := v.(InjectedPanic)
			if !ok || ip.Site != TrialStart || ip.Msg != "boom" {
				t.Errorf("recovered %#v, want InjectedPanic at trial-start", v)
			}
		}()
		Hit(TrialStart)
		t.Error("Hit did not panic")
	}()

	// The window is exhausted: subsequent hits pass.
	if err := Hit(TrialStart); err != nil {
		t.Errorf("hit after window returned %v", err)
	}
}

func TestSitesAreIndependent(t *testing.T) {
	Arm(NewPlan(Rule{Site: JournalWrite, After: 0, Times: 1, Mode: ModeError}))
	defer Disarm()
	if err := Hit(CacheRead); err != nil {
		t.Errorf("unarmed site injected %v", err)
	}
	if err := Hit(JournalWrite); err == nil {
		t.Error("armed site injected nothing")
	}
}

// TestConcurrentCountExact: the injected fault count must be exact under
// concurrency even though which goroutine draws the fault is
// scheduling-dependent — the contract the mc pools rely on.
func TestConcurrentCountExact(t *testing.T) {
	p := NewPlan(Rule{Site: TrialStart, After: 50, Times: 7, Mode: ModeError})
	Arm(p)
	defer Disarm()

	var wg sync.WaitGroup
	var mu sync.Mutex
	injected := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := Hit(TrialStart); err != nil {
					mu.Lock()
					injected++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if injected != 7 {
		t.Errorf("%d faults injected, want exactly 7", injected)
	}
	if p.Hits(TrialStart) != 800 {
		t.Errorf("Hits = %d, want 800", p.Hits(TrialStart))
	}
}
