// Package faultpoint is the deterministic fault-injection layer of the
// execution stack. Production code names the places where the real world
// can fail — a trial about to run, a probe cache about to flush, a journal
// file about to be written — by calling Hit at a Site; the chaos tests arm
// a Plan that makes chosen hits fail (with an error or a panic) at exact,
// reproducible points, and the robustness suites prove the stack degrades
// gracefully: recovered panics become failed runs, interrupted sweeps
// resume byte-identically, injected I/O errors are retried and then
// quarantined, and results are never silently wrong.
//
// The layer is free when unarmed: Hit is one atomic pointer load against
// nil, no allocation, no lock — safe to leave in pool loops and flush
// paths permanently. Arming is process-global and test-only by convention;
// nothing in the repository arms a plan outside _test files.
//
// Determinism: a Rule triggers on hit counts, and every site counts its
// hits in one atomic counter, so a plan injects exactly the configured
// number of faults regardless of scheduling. For sites hit under a lock or
// from a single goroutine (the flush and journal sites) the *position* of
// the fault is exact as well; for concurrently hit sites (trial-start) the
// count is exact while the affected trial index is scheduling-dependent —
// which is precisely the situation a worker fleet must tolerate.
package faultpoint

import (
	"fmt"
	"sync/atomic"
)

// Site names one injection point in production code.
type Site string

// The sites the execution stack declares. Adding a site is cheap; every
// site must appear in the DESIGN.md §8 fault matrix with the chaos test
// that pins its behaviour.
const (
	// TrialStart fires at the start of every Monte-Carlo replicate (and
	// every lockstep block) inside the internal/mc pools, inside the
	// panic-isolation boundary — an injected panic here is recovered into
	// a mc.TrialPanicError like any engine panic.
	TrialStart Site = "trial-start"
	// ProbeFlush fires when the sweep probe cache checkpoints itself at a
	// probe boundary. A panic here simulates a process killed mid-sweep
	// with only the checkpointed probes on disk.
	ProbeFlush Site = "probe-flush"
	// CacheRead fires when a persisted probe cache file is read.
	CacheRead Site = "cache-read"
	// CacheWrite fires on every attempt to persist the probe cache.
	CacheWrite Site = "cache-write"
	// JournalWrite fires on every attempt to persist a serve run-journal
	// entry.
	JournalWrite Site = "journal-write"
	// ShardDispatch fires when the fabric coordinator is about to send a
	// trial-block shard to a worker. An injected error simulates a worker
	// that became unreachable between pick and dispatch; the coordinator
	// must evict it and reassign the shard.
	ShardDispatch Site = "shard-dispatch"
	// ShardResult fires when the coordinator is about to accept a worker's
	// shard result. An injected error simulates a torn or corrupt response;
	// the shard must be reassigned, never partially counted.
	ShardResult Site = "shard-result"
	// WorkerHeartbeat fires when a fabric worker is about to send a
	// heartbeat. An injected error simulates a dropped heartbeat; enough of
	// them expire the worker's lease on the coordinator.
	WorkerHeartbeat Site = "worker-heartbeat"
)

// Mode selects what an armed rule does when it triggers.
type Mode int

const (
	// ModeError makes Hit return an *InjectedError.
	ModeError Mode = iota
	// ModePanic makes Hit panic with an InjectedPanic value.
	ModePanic
)

// Rule arms one site: hits numbered [After, After+Times) at Site trigger
// the rule's Mode (hit numbering is 0-based and per-site). Times <= 0
// means 1.
type Rule struct {
	Site  Site
	After int
	Times int
	Mode  Mode
	// Msg annotates the injected error or panic, for test assertions.
	Msg string
}

// armed is one rule with its live hit window.
type armed struct {
	rule Rule
	lo   int64
	hi   int64
}

// Plan is a compiled set of rules sharing per-site hit counters. Plans are
// immutable after NewPlan; the counters advance atomically as sites are
// hit.
type Plan struct {
	rules    map[Site][]*armed
	counters map[Site]*atomic.Int64
	// Triggered counts injected faults across the plan's lifetime.
	triggered atomic.Int64
}

// NewPlan compiles rules into an armable plan.
func NewPlan(rules ...Rule) *Plan {
	p := &Plan{rules: make(map[Site][]*armed), counters: make(map[Site]*atomic.Int64)}
	for _, r := range rules {
		times := r.Times
		if times <= 0 {
			times = 1
		}
		p.rules[r.Site] = append(p.rules[r.Site], &armed{
			rule: r,
			lo:   int64(r.After),
			hi:   int64(r.After + times),
		})
		if p.counters[r.Site] == nil {
			p.counters[r.Site] = new(atomic.Int64)
		}
	}
	return p
}

// Triggered returns how many faults the plan has injected so far.
func (p *Plan) Triggered() int64 { return p.triggered.Load() }

// Hits returns how many times site has been hit while this plan was armed.
func (p *Plan) Hits(site Site) int64 {
	c := p.counters[site]
	if c == nil {
		return 0
	}
	return c.Load()
}

// active is the process-global armed plan; nil when disarmed, which is the
// permanent production state.
var active atomic.Pointer[Plan]

// Arm makes p the active plan. Tests must pair it with Disarm (defer
// Disarm() immediately after Arm).
func Arm(p *Plan) { active.Store(p) }

// Disarm deactivates fault injection; every Hit is a nil check again.
func Disarm() { active.Store(nil) }

// Armed reports whether a plan is active.
func Armed() bool { return active.Load() != nil }

// InjectedError is the error Hit returns for a triggered ModeError rule.
type InjectedError struct {
	Site Site
	Msg  string
}

func (e *InjectedError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("faultpoint: injected fault at %s: %s", e.Site, e.Msg)
	}
	return fmt.Sprintf("faultpoint: injected fault at %s", e.Site)
}

// InjectedPanic is the value Hit panics with for a triggered ModePanic
// rule.
type InjectedPanic struct {
	Site Site
	Msg  string
}

func (p InjectedPanic) String() string {
	if p.Msg != "" {
		return fmt.Sprintf("faultpoint: injected panic at %s: %s", p.Site, p.Msg)
	}
	return fmt.Sprintf("faultpoint: injected panic at %s", p.Site)
}

// Hit reports the fault injected at site, if any: nil always when no plan
// is armed (the production fast path — one atomic load), an *InjectedError
// for a triggered ModeError rule, and a panic carrying an InjectedPanic
// for a triggered ModePanic rule. Counting is per-site and atomic, so a
// plan injects exactly its configured number of faults under any
// scheduling.
func Hit(site Site) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.hit(site)
}

// hit advances site's counter and evaluates the site's rules against the
// hit number. It is split from Hit so the unarmed path stays trivially
// inlinable.
func (p *Plan) hit(site Site) error {
	rules := p.rules[site]
	if len(rules) == 0 {
		return nil
	}
	n := p.counters[site].Add(1) - 1
	for _, a := range rules {
		if n < a.lo || n >= a.hi {
			continue
		}
		p.triggered.Add(1)
		if a.rule.Mode == ModePanic {
			panic(InjectedPanic{Site: site, Msg: a.rule.Msg})
		}
		return &InjectedError{Site: site, Msg: a.rule.Msg}
	}
	return nil
}
