module lvmajority

go 1.24
