// Package lvmajority_test holds the top-level benchmark harness: one
// benchmark per paper artifact, as indexed in DESIGN.md §3 (generated from
// the experiment registry by cmd/report). The paper's
// evaluation consists of Table 1 (six competition regimes; benchmarked row
// by row under BenchmarkTable1) and the theorem suite behind it (the
// BenchmarkE* benchmarks). Each benchmark executes the corresponding
// registered experiment at the quick effort level and reports the headline
// scalar it produces (threshold, exponent, or probability), so
//
//	go test -bench=. -benchmem
//
// regenerates every row the paper reports. Use cmd/experiments for the full
// tables and the heavier recorded grids.
package lvmajority_test

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"lvmajority/internal/experiment"
)

// runExperiment executes a registered experiment once per benchmark
// iteration and reports a named scalar extracted from its tables.
func runExperiment(b *testing.B, id string, metric func([]*experiment.Table) (name string, value float64, err error)) {
	b.Helper()
	e, err := experiment.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(experiment.Config{Seed: 20240506, Workers: 0})
		if err != nil {
			b.Fatal(err)
		}
		if metric == nil {
			continue
		}
		name, value, err := metric(tables)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(value, name)
	}
}

// fitExponentMetric extracts the power-law exponent from the scaling-fit
// table an experiment produced.
func fitExponentMetric(tables []*experiment.Table) (string, float64, error) {
	for _, tbl := range tables {
		if !strings.Contains(tbl.Title, "scaling fit") {
			continue
		}
		if len(tbl.Rows) == 0 || len(tbl.Rows[0]) == 0 {
			return "", 0, fmt.Errorf("empty fit table %q", tbl.Title)
		}
		v, err := strconv.ParseFloat(tbl.Rows[0][0], 64)
		if err != nil {
			return "", 0, fmt.Errorf("parsing exponent %q: %w", tbl.Rows[0][0], err)
		}
		return "fit-exponent", v, nil
	}
	return "", 0, fmt.Errorf("no scaling-fit table")
}

// lastThresholdMetric extracts the threshold of the last row of the first
// table, locating the "threshold" column by header name.
func lastThresholdMetric(tables []*experiment.Table) (string, float64, error) {
	if len(tables) == 0 || len(tables[0].Rows) == 0 {
		return "", 0, fmt.Errorf("no threshold table")
	}
	col := -1
	for i, name := range tables[0].Columns {
		if name == "threshold" {
			col = i
			break
		}
	}
	if col < 0 {
		return "", 0, fmt.Errorf("no threshold column in %q", tables[0].Title)
	}
	rows := tables[0].Rows
	last := rows[len(rows)-1]
	v, err := strconv.ParseFloat(last[col], 64)
	if err != nil {
		return "", 0, fmt.Errorf("parsing threshold %q: %w", last[col], err)
	}
	return "last-row-threshold", v, nil
}

// BenchmarkTable1 regenerates Table 1 of the paper, one sub-benchmark per
// row.
func BenchmarkTable1(b *testing.B) {
	b.Run("SD", func(b *testing.B) {
		// Row 1, self-destructive column: polylog threshold band
		// [Ω(√log n), O(log² n)].
		runExperiment(b, "T1-SD", fitExponentMetric)
	})
	b.Run("NSD", func(b *testing.B) {
		// Row 1, non-self-destructive column: polynomial band
		// [Ω(√n), O(√(n log n))].
		runExperiment(b, "T1-NSD", fitExponentMetric)
	})
	b.Run("Both", func(b *testing.B) {
		// Row 2: inter+intraspecific competition, ρ = a/(a+b) exactly.
		runExperiment(b, "T1-BOTH", nil)
	})
	b.Run("IntraOnly", func(b *testing.B) {
		// Row 3: intraspecific only — no threshold exists.
		runExperiment(b, "T1-INTRA", nil)
	})
	b.Run("Delta0", func(b *testing.B) {
		// Row 4: δ = 0 special cases (Cho et al. and Andaur et al.).
		runExperiment(b, "T1-CHO", fitExponentMetric)
	})
	b.Run("NoCompetition", func(b *testing.B) {
		// Row 5: α = γ = 0, ρ = a/(a+b), threshold at the edge.
		runExperiment(b, "T1-NONE", nil)
	})
}

// BenchmarkSeparation regenerates the §1.4 headline SD-vs-NSD comparison at
// fixed n (experiment E-SEP).
func BenchmarkSeparation(b *testing.B) {
	runExperiment(b, "E-SEP", func(tables []*experiment.Table) (string, float64, error) {
		// Report the SD crossing gap from the summary table.
		for _, tbl := range tables {
			if !strings.Contains(tbl.Title, "crossing") || len(tbl.Rows) == 0 {
				continue
			}
			v, err := strconv.ParseFloat(tbl.Rows[0][1], 64)
			if err != nil {
				return "", 0, err
			}
			return "sd-crossing-gap", v, nil
		}
		return "", 0, fmt.Errorf("no crossing table")
	})
}

// BenchmarkConsensusTime validates Theorem 13(a): T(S) = O(n).
func BenchmarkConsensusTime(b *testing.B) {
	runExperiment(b, "E-TIME", func(tables []*experiment.Table) (string, float64, error) {
		rows := tables[0].Rows
		v, err := strconv.ParseFloat(rows[len(rows)-1][3], 64)
		if err != nil {
			return "", 0, err
		}
		return "meanT-over-n", v, nil
	})
}

// BenchmarkBadEvents validates Theorem 13(b): J(S) = O(log n) mean.
func BenchmarkBadEvents(b *testing.B) {
	runExperiment(b, "E-BAD", func(tables []*experiment.Table) (string, float64, error) {
		rows := tables[0].Rows
		v, err := strconv.ParseFloat(rows[len(rows)-1][3], 64)
		if err != nil {
			return "", 0, err
		}
		return "meanJ-over-ln-n", v, nil
	})
}

// BenchmarkNiceChain validates Lemmas 5–8 on the §5.2 dominating chain.
func BenchmarkNiceChain(b *testing.B) {
	runExperiment(b, "E-NICE", func(tables []*experiment.Table) (string, float64, error) {
		rows := tables[0].Rows
		v, err := strconv.ParseFloat(rows[len(rows)-1][6], 64)
		if err != nil {
			return "", 0, err
		}
		return "EB-over-Hn", v, nil
	})
}

// BenchmarkDomination validates the §5 chain-domination machinery
// (Lemmas 9–12).
func BenchmarkDomination(b *testing.B) {
	runExperiment(b, "E-DOM", func(tables []*experiment.Table) (string, float64, error) {
		// Invariant violations across all coupled runs must be zero.
		var total float64
		for _, row := range tables[0].Rows {
			v, err := strconv.ParseFloat(row[3], 64)
			if err != nil {
				return "", 0, err
			}
			total += v
		}
		return "invariant-violations", total, nil
	})
}

// BenchmarkODEComparison regenerates the §2.1 deterministic-vs-stochastic
// contrast (Eq. 4).
func BenchmarkODEComparison(b *testing.B) {
	runExperiment(b, "E-ODE", nil)
}

// BenchmarkBaselines regenerates the §2.2 related-work comparison.
func BenchmarkBaselines(b *testing.B) {
	runExperiment(b, "E-BASE", lastThresholdMetric)
}

// BenchmarkAsymmetric validates the asymmetric-rates remark of Theorem 18.
func BenchmarkAsymmetric(b *testing.B) {
	runExperiment(b, "E-ASYM", nil)
}

// BenchmarkExactSolver cross-validates the Eq. (8) recurrence solver against
// the closed forms of Theorems 20/23 and Monte Carlo.
func BenchmarkExactSolver(b *testing.B) {
	runExperiment(b, "E-EXACT", nil)
}

// BenchmarkNoiseDecomposition regenerates the §1.5 noise decomposition
// F = F_ind + F_comp.
func BenchmarkNoiseDecomposition(b *testing.B) {
	runExperiment(b, "E-NOISE", func(tables []*experiment.Table) (string, float64, error) {
		// Report sd(F_comp)/sqrt(n) at the largest NSD n — the random
		// walk scale of non-self-destructive competition noise.
		rows := tables[0].Rows
		v, err := strconv.ParseFloat(rows[len(rows)-1][5], 64)
		if err != nil {
			return "", 0, err
		}
		return "sd-Fcomp-over-sqrt-n", v, nil
	})
}

// BenchmarkGammaTransition explores the §1.6 open problem: the threshold
// regime transition as intraspecific competition strength grows.
func BenchmarkGammaTransition(b *testing.B) {
	runExperiment(b, "E-GAMMA", nil)
}

// BenchmarkSpatial runs the §1.6–1.7 future-work extension: the SD
// amplifier on a deme-structured metapopulation.
func BenchmarkSpatial(b *testing.B) {
	runExperiment(b, "E-SPATIAL", nil)
}

// BenchmarkPlurality runs the k-species plurality generalization.
func BenchmarkPlurality(b *testing.B) {
	runExperiment(b, "E-PLURAL", nil)
}

// BenchmarkGossip regenerates the §2.2 synchronous gossip-dynamics
// comparison: two-choices, 3-majority, and undecided-state dynamics
// thresholds plus the driftless voter baseline.
func BenchmarkGossip(b *testing.B) {
	runExperiment(b, "E-GOSSIP", func(tables []*experiment.Table) (string, float64, error) {
		// Report the fitted exponent of the first dynamics
		// (two-choices); the literature scale Θ(√(n log n)) shows up
		// as an exponent slightly above 1/2.
		return fitExponentMetric(tables)
	})
}

// BenchmarkMoran validates the Moran-process baseline against its exact
// fixation probability.
func BenchmarkMoran(b *testing.B) {
	runExperiment(b, "E-MORAN", func(tables []*experiment.Table) (string, float64, error) {
		// Report the fraction of rows whose CI covers the closed form.
		rows := tables[0].Rows
		if len(rows) == 0 {
			return "", 0, fmt.Errorf("empty E-MORAN table")
		}
		covered := 0
		for _, row := range rows {
			if row[len(row)-1] == "true" {
				covered++
			}
		}
		return "exact-coverage", float64(covered) / float64(len(rows)), nil
	})
}

// BenchmarkExploit runs the §1.6 exploitative-competition chemostat
// extension.
func BenchmarkExploit(b *testing.B) {
	runExperiment(b, "E-EXPLOIT", nil)
}

// BenchmarkDiffusion runs the §1.5 diffusion approximation and reports its
// worst-case prediction error against Monte Carlo.
func BenchmarkDiffusion(b *testing.B) {
	runExperiment(b, "E-DIFF", func(tables []*experiment.Table) (string, float64, error) {
		last := tables[len(tables)-1]
		if len(last.Rows) == 0 || len(last.Rows[0]) == 0 {
			return "", 0, fmt.Errorf("missing E-DIFF summary table")
		}
		v, err := strconv.ParseFloat(last.Rows[0][0], 64)
		if err != nil {
			return "", 0, err
		}
		return "max-abs-err", v, nil
	})
}

// BenchmarkFitness runs the non-neutrality ablation (per-species birth
// rates).
func BenchmarkFitness(b *testing.B) {
	runExperiment(b, "E-FITNESS", nil)
}
